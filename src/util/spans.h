// Hierarchical phase spans: RAII scoped timers that nest, aggregate by
// path, and survive ThreadPool fan-out.
//
//   AHS_SPAN("uniformization.solve");
//
// opens a span named "uniformization.solve" under the thread's current
// span; all invocations with the same path share one node, accumulating
// (count, total time).  A SpanTree must be attached (process-wide, via
// util::TelemetrySession or SpanTree::set_global) for spans to record —
// detached, AHS_SPAN is a null-pointer test.
//
// Fan-out: util::ThreadPool captures the submitter's span token at submit()
// time and re-establishes it inside the task, so work a phase fans out
// appears *under* that phase in the tree regardless of which worker ran it
// or how many workers exist.  Span paths (the tree's key structure) are
// therefore thread-count independent; only the measured durations differ.
//
// Spans are for phase-granularity timing (a solve, a sweep point, a
// replication batch) — per-event costs belong in util/metrics counters.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace util {

/// Shared, thread-safe aggregation tree.  Node creation locks; recording a
/// finished span into an existing node is lock-free.
class SpanTree {
 public:
  struct Node;

  SpanTree();
  ~SpanTree();

  SpanTree(const SpanTree&) = delete;
  SpanTree& operator=(const SpanTree&) = delete;

  Node* root() const { return root_; }

  /// Find-or-create the child of `parent` named `name`.
  Node* child(Node* parent, const char* name);

  /// Accumulates one finished span into `node`.
  void record(Node* node, std::uint64_t elapsed_ns);

  /// Aggregated view.  Children are sorted by name, so the structure is
  /// deterministic for a given set of executed span paths.
  struct Snapshot {
    std::string name;
    std::uint64_t count = 0;
    double seconds = 0.0;
    std::vector<Snapshot> children;
  };
  Snapshot snapshot() const;

  /// Process-wide default tree, or null when detached.
  static SpanTree* global();
  static void set_global(SpanTree* tree);

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<Node>> nodes_;  ///< owns every node
  Node* root_;
};

/// A position in a SpanTree — what a thread is "inside" right now.  Null
/// tree means no telemetry is active for that thread.
struct SpanToken {
  SpanTree* tree = nullptr;
  SpanTree::Node* node = nullptr;
};

/// The calling thread's current span position: its adopted/open span if it
/// has one, else the root of the attached global tree, else a null token.
SpanToken current_span_token();

/// RAII: makes `token` the calling thread's current span position (restores
/// the previous one on destruction).  ThreadPool wraps every task in one of
/// these so pool tasks continue the submitter's span path.
class SpanTokenScope {
 public:
  explicit SpanTokenScope(SpanToken token);
  ~SpanTokenScope();

  SpanTokenScope(const SpanTokenScope&) = delete;
  SpanTokenScope& operator=(const SpanTokenScope&) = delete;

 private:
  SpanToken saved_;
  bool active_;
};

class TraceRecorder;

/// RAII scoped timer — use via AHS_SPAN.  `name` must outlive the scope
/// (string literals do).  When a util::TraceRecorder is attached (util/
/// trace.h) the span also emits begin/end events into the flight recorder,
/// so the span vocabulary doubles as the trace timeline.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name);
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTree* tree_;
  SpanTree::Node* node_ = nullptr;
  SpanTree::Node* parent_ = nullptr;
  std::uint64_t start_ns_ = 0;
  TraceRecorder* trace_ = nullptr;
  std::uint32_t trace_name_ = 0;
};

}  // namespace util

#define AHS_SPAN_CONCAT2(a, b) a##b
#define AHS_SPAN_CONCAT(a, b) AHS_SPAN_CONCAT2(a, b)
#define AHS_SPAN(name) \
  ::util::ScopedSpan AHS_SPAN_CONCAT(ahs_span_scope_, __LINE__)(name)
