// Pseudo-random number generation.
//
// The simulation engine needs (a) a fast, high-quality 64-bit generator and
// (b) *splittable* independent streams so that each replication — and each
// replica submodel inside a replication — can draw from its own stream
// without synchronization and with reproducible results regardless of
// scheduling.  We implement xoshiro256++ (Blackman & Vigna) seeded through
// splitmix64, with `jump()`-free stream derivation: a child stream is seeded
// by hashing (parent seed, child index) through splitmix64, which is the
// standard practical construction for independent streams.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace util {

/// splitmix64 step; used for seeding and stream derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256++ generator.  Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the generator from a single 64-bit value via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01();

  /// Uniform double in (0, 1] — safe as input to -log() without clamping.
  double uniform01_open_left();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  /// Requires bound > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Exponential variate with the given rate (> 0).
  double exponential(double rate);

  /// Derives an independent child stream; deterministic in (this seed, idx).
  Rng split(std::uint64_t idx) const;

  /// Domain-separated child stream: deterministic in (this seed, idx,
  /// domain), and independent of `split(idx)` and of any other domain.
  /// This is the counter-based construction the simulation executor uses to
  /// give every activity its own stream — replication streams are derived
  /// with plain `split(rep)`, per-activity streams with
  /// `split(activity, kActivityStreamDomain)`, so the two families can never
  /// collide even at equal indices.
  Rng split(std::uint64_t idx, std::uint64_t domain) const;

  /// The seed this generator was constructed from (for reproducibility logs).
  std::uint64_t seed() const { return seed_; }

  /// Equivalent to 2^128 calls of operator(); used to partition one seed
  /// into non-overlapping sequences.
  void long_jump();

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;
};

}  // namespace util
