#include "util/distributions.h"

#include <cmath>
#include <numbers>
#include <sstream>

#include "util/error.h"

namespace util {

Distribution Distribution::Exponential(double rate) {
  AHS_REQUIRE(rate > 0.0, "Exponential rate must be > 0");
  return Distribution(DistKind::kExponential, rate, 0.0);
}

Distribution Distribution::Deterministic(double value) {
  AHS_REQUIRE(value >= 0.0, "Deterministic delay must be >= 0");
  return Distribution(DistKind::kDeterministic, value, 0.0);
}

Distribution Distribution::Uniform(double lo, double hi) {
  AHS_REQUIRE(0.0 <= lo && lo <= hi, "Uniform requires 0 <= lo <= hi");
  return Distribution(DistKind::kUniform, lo, hi);
}

Distribution Distribution::Erlang(int shape, double rate) {
  AHS_REQUIRE(shape >= 1, "Erlang shape must be >= 1");
  AHS_REQUIRE(rate > 0.0, "Erlang rate must be > 0");
  return Distribution(DistKind::kErlang, static_cast<double>(shape), rate);
}

Distribution Distribution::Weibull(double shape, double scale) {
  AHS_REQUIRE(shape > 0.0 && scale > 0.0, "Weibull parameters must be > 0");
  return Distribution(DistKind::kWeibull, shape, scale);
}

Distribution Distribution::Lognormal(double mu, double sigma) {
  AHS_REQUIRE(sigma >= 0.0, "Lognormal sigma must be >= 0");
  return Distribution(DistKind::kLognormal, mu, sigma);
}

double Distribution::rate() const {
  AHS_REQUIRE(is_exponential(), "rate() requires an exponential distribution");
  return p0_;
}

double Distribution::mean() const {
  switch (kind_) {
    case DistKind::kExponential:
      return 1.0 / p0_;
    case DistKind::kDeterministic:
      return p0_;
    case DistKind::kUniform:
      return 0.5 * (p0_ + p1_);
    case DistKind::kErlang:
      return p0_ / p1_;
    case DistKind::kWeibull:
      return p1_ * std::tgamma(1.0 + 1.0 / p0_);
    case DistKind::kLognormal:
      return std::exp(p0_ + 0.5 * p1_ * p1_);
  }
  throw InvariantError("unknown distribution kind");
}

double Distribution::sample(Rng& rng) const {
  switch (kind_) {
    case DistKind::kExponential:
      return rng.exponential(p0_);
    case DistKind::kDeterministic:
      return p0_;
    case DistKind::kUniform:
      return rng.uniform(p0_, p1_);
    case DistKind::kErlang: {
      double sum = 0.0;
      const int shape = static_cast<int>(p0_);
      for (int i = 0; i < shape; ++i) sum += rng.exponential(p1_);
      return sum;
    }
    case DistKind::kWeibull:
      // Inverse CDF: scale * (-ln U)^(1/shape).
      return p1_ * std::pow(-std::log(rng.uniform01_open_left()), 1.0 / p0_);
    case DistKind::kLognormal: {
      // Box–Muller; one variate per call keeps the stream usage simple and
      // reproducible at a small constant-factor cost.
      const double u1 = rng.uniform01_open_left();
      const double u2 = rng.uniform01();
      const double z = std::sqrt(-2.0 * std::log(u1)) *
                       std::cos(2.0 * std::numbers::pi * u2);
      return std::exp(p0_ + p1_ * z);
    }
  }
  throw InvariantError("unknown distribution kind");
}

std::string Distribution::describe() const {
  std::ostringstream os;
  switch (kind_) {
    case DistKind::kExponential:
      os << "Exp(rate=" << p0_ << ")";
      break;
    case DistKind::kDeterministic:
      os << "Det(" << p0_ << ")";
      break;
    case DistKind::kUniform:
      os << "Unif[" << p0_ << "," << p1_ << "]";
      break;
    case DistKind::kErlang:
      os << "Erlang(k=" << static_cast<int>(p0_) << ",rate=" << p1_ << ")";
      break;
    case DistKind::kWeibull:
      os << "Weibull(shape=" << p0_ << ",scale=" << p1_ << ")";
      break;
    case DistKind::kLognormal:
      os << "Lognormal(mu=" << p0_ << ",sigma=" << p1_ << ")";
      break;
  }
  return os.str();
}

std::size_t sample_discrete(Rng& rng, std::span<const double> weights) {
  AHS_REQUIRE(!weights.empty(), "sample_discrete needs at least one weight");
  double total = 0.0;
  for (double w : weights) {
    AHS_REQUIRE(w >= 0.0, "weights must be non-negative");
    total += w;
  }
  AHS_REQUIRE(total > 0.0, "at least one weight must be positive");
  double u = rng.uniform01() * total;
  for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
    if (u < weights[i]) return i;
    u -= weights[i];
  }
  return weights.size() - 1;
}

}  // namespace util
