#include "util/stats.h"

#include <algorithm>
#include <cmath>

#include "util/error.h"

namespace util {

double inverse_normal_cdf(double p) {
  AHS_REQUIRE(p > 0.0 && p < 1.0, "inverse_normal_cdf requires 0 < p < 1");
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  const double phigh = 1 - plow;
  double q, r;
  if (p < plow) {
    q = std::sqrt(-2 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
  }
  if (p <= phigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1);
  }
  q = std::sqrt(-2 * std::log(1 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1);
}

double normal_critical_value(double confidence) {
  AHS_REQUIRE(confidence > 0.0 && confidence < 1.0,
              "confidence must be in (0,1)");
  // Common levels hard-coded for exactness in tests.
  if (confidence == 0.90) return 1.6448536269514722;
  if (confidence == 0.95) return 1.959963984540054;
  if (confidence == 0.99) return 2.5758293035489004;
  return inverse_normal_cdf(0.5 + confidence / 2.0);
}

double ConfidenceInterval::relative_half_width() const {
  if (mean == 0.0) return std::numeric_limits<double>::infinity();
  return half_width / std::abs(mean);
}

void RunningStat::push(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::merge(const RunningStat& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n_total = na + nb;
  mean_ += delta * nb / n_total;
  m2_ += other.m2_ + delta * delta * na * nb / n_total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStat::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::sum_squares() const {
  return m2_ + static_cast<double>(n_) * mean_ * mean_;
}

double RunningStat::effective_sample_size() const {
  const double ss = sum_squares();
  if (ss <= 0.0) return 0.0;
  const double s = sum();
  return s * s / ss;
}

double RunningStat::std_error() const {
  if (n_ < 2) return std::numeric_limits<double>::infinity();
  return stddev() / std::sqrt(static_cast<double>(n_));
}

ConfidenceInterval RunningStat::interval(double confidence) const {
  ConfidenceInterval ci;
  ci.mean = mean();
  ci.confidence = confidence;
  if (n_ >= 2) ci.half_width = normal_critical_value(confidence) * std_error();
  return ci;
}

void RunningStat::reset() { *this = RunningStat(); }

void RunningStat::restore(const State& s) {
  n_ = s.n;
  mean_ = s.mean;
  m2_ = s.m2;
  min_ = s.min;
  max_ = s.max;
}

void ProportionStat::push(bool success) {
  ++n_;
  if (success) ++k_;
}

void ProportionStat::push_count(std::uint64_t successes,
                                std::uint64_t trials) {
  AHS_REQUIRE(successes <= trials, "successes cannot exceed trials");
  n_ += trials;
  k_ += successes;
}

double ProportionStat::proportion() const {
  return n_ ? static_cast<double>(k_) / static_cast<double>(n_) : 0.0;
}

ConfidenceInterval ProportionStat::interval(double confidence) const {
  ConfidenceInterval ci;
  ci.confidence = confidence;
  if (n_ == 0) return ci;
  const double z = normal_critical_value(confidence);
  const double n = static_cast<double>(n_);
  const double p = proportion();
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (p + z2 / (2 * n)) / denom;
  const double hw =
      z * std::sqrt(p * (1 - p) / n + z2 / (4 * n * n)) / denom;
  ci.mean = center;
  ci.half_width = hw;
  return ci;
}

BatchMeans::BatchMeans(std::uint64_t batch_size) : batch_size_(batch_size) {
  AHS_REQUIRE(batch_size >= 1, "batch size must be >= 1");
}

void BatchMeans::push(double x) {
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    const double m = batch_sum_ / static_cast<double>(batch_size_);
    batches_.push(m);
    means_.push_back(m);
    in_batch_ = 0;
    batch_sum_ = 0.0;
  }
}

ConfidenceInterval BatchMeans::interval(double confidence) const {
  return batches_.interval(confidence);
}

double BatchMeans::lag1_autocorrelation() const {
  if (means_.size() < 3) return 0.0;
  const double m = batches_.mean();
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < means_.size(); ++i) {
    const double d = means_[i] - m;
    den += d * d;
    if (i + 1 < means_.size()) num += d * (means_[i + 1] - m);
  }
  return den > 0.0 ? num / den : 0.0;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  AHS_REQUIRE(hi > lo, "histogram range must be non-empty");
  AHS_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void Histogram::push(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((x - lo_) / width_);
  if (bin >= counts_.size()) bin = counts_.size() - 1;  // fp edge guard
  ++counts_[bin];
}

double Histogram::bin_lo(std::size_t bin) const {
  AHS_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + width_ * static_cast<double>(bin);
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin) + width_; }

double Histogram::density(std::size_t bin) const {
  AHS_REQUIRE(bin < counts_.size(), "bin out of range");
  if (total_ == 0) return 0.0;
  return static_cast<double>(counts_[bin]) /
         (static_cast<double>(total_) * width_);
}

void KahanSum::add(double x) {
  const double y = x - c_;
  const double t = sum_ + y;
  c_ = (t - sum_) - y;
  sum_ = t;
}

}  // namespace util
