// Crash-safe file persistence for checkpoints and results.
//
// Long estimation runs (the paper's §4.1 protocol reaches millions of
// replications at low λ) must survive crashes, OOM kills, and Ctrl-C.  The
// primitives here are the storage half of that story:
//
//  * atomic_write_file — the classic write-temp + fsync + rename + fsync-dir
//    sequence: readers see either the complete old content or the complete
//    new content, never a truncation, even if the writer dies mid-call.
//  * FileLock — an advisory whole-file lock (POSIX flock) so concurrent
//    processes serialize read-modify-write cycles on shared files
//    (results/bench_timings.json is the motivating case).
//  * Snapshot envelope — a versioned header carrying the model's structural
//    fingerprint, the RNG seed, and a hash of the estimation options.  A
//    checkpoint that does not match the run it is resumed into is
//    *rejected* with SnapshotError — never silently merged — so editing a
//    parameter and rerunning with --resume cannot corrupt an estimate.
//  * Bitwise double tokens — doubles cross the file boundary as hex bit
//    patterns, so a restored accumulator is bit-for-bit the accumulator
//    that was saved (the foundation of the resume-identity guarantee in
//    docs/ROBUSTNESS.md).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace util {

/// Thrown when a snapshot file is corrupt, has an unknown version, or does
/// not match the run it is being resumed into (fingerprint/seed/options).
class SnapshotError : public std::runtime_error {
 public:
  explicit SnapshotError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Durably replaces `path` with `content`: writes `path.tmp.<pid>`, fsyncs
/// it, renames it over `path`, and fsyncs the directory.  A reader (or a
/// crash) can never observe a partial file.  Throws SnapshotError on I/O
/// failure; the temp file is cleaned up on every failure path.
void atomic_write_file(const std::string& path, const std::string& content);

/// Reads a whole file; returns false when it does not exist.  Throws
/// SnapshotError on read failure.
bool read_file(const std::string& path, std::string* content);

/// Advisory exclusive lock on `path` (created empty if absent), held for
/// the object's lifetime.  Blocks until acquired.  Advisory: only
/// cooperating FileLock users are serialized — which is exactly the
/// concurrent-bench-process case.  Not copyable or movable.
class FileLock {
 public:
  explicit FileLock(const std::string& path);
  ~FileLock();
  FileLock(const FileLock&) = delete;
  FileLock& operator=(const FileLock&) = delete;

 private:
  int fd_ = -1;
};

/// Identity of a checkpoint: what it is a checkpoint *of*.  All four fields
/// must match on resume; `kind` separates the layered formats ("transient",
/// "sweep-point", ...) so a file can never be parsed as the wrong payload.
struct SnapshotHeader {
  std::string kind;
  std::uint64_t fingerprint = 0;  ///< Parameters::structural_fingerprint
  std::uint64_t seed = 0;         ///< master RNG seed of the run
  std::uint64_t option_hash = 0;  ///< hash of every result-determining knob
};

/// Atomically writes `header` + `payload` to `path` (format version
/// "ahs.snapshot.v1", see docs/ROBUSTNESS.md).
void write_snapshot(const std::string& path, const SnapshotHeader& header,
                    const std::string& payload);

/// Loads the snapshot at `path`.  Returns false when the file does not
/// exist (nothing to resume).  Throws SnapshotError when the file is
/// corrupt, carries an unknown version, or its header differs from
/// `expect` in any field — a stale or mismatched checkpoint must never be
/// silently merged into a fresh run.
bool read_snapshot(const std::string& path, const SnapshotHeader& expect,
                   std::string* payload);

// ---- bitwise-exact payload tokens -------------------------------------
// Payloads are whitespace-separated tokens.  Doubles are serialized as the
// hex of their IEEE-754 bit pattern: decode(encode(x)) is bit-identical
// for every value including -0.0, infinities, NaNs, and denormals.

std::string encode_double(double v);
double decode_double(const std::string& token);

/// Sequential token reader over a payload string.  Throws SnapshotError on
/// exhaustion or malformed tokens (a truncated payload is corruption).
class TokenReader {
 public:
  explicit TokenReader(const std::string& payload);

  std::uint64_t next_u64();
  double next_f64();
  bool done() const { return pos_ >= tokens_.size(); }

 private:
  const std::string& next_token();
  std::vector<std::string> tokens_;
  std::size_t pos_ = 0;
};

/// FNV-1a–style accumulation used to build option hashes: fold `value`
/// into `h`.  Deterministic across platforms/runs.
std::uint64_t hash_mix(std::uint64_t h, std::uint64_t value);
std::uint64_t hash_mix(std::uint64_t h, double value);
std::uint64_t hash_mix(std::uint64_t h, const std::string& value);

}  // namespace util
