// Run-telemetry metrics: a thread-safe registry of named counters, gauges,
// and fixed-bucket histograms, cheap enough for the simulation/solver hot
// paths.
//
// Design:
//  * Handles, not lookups: a call site resolves `registry.counter("name")`
//    once (at construction/reset time) and keeps the returned handle; the
//    per-event operation is handle.add(n).
//  * Per-thread shards: every thread writes its own cells, so increments
//    never contend.  Cells are plain words accessed through
//    std::atomic_ref with relaxed ordering — each cell has exactly one
//    writer (its thread), so no RMW lock prefix is needed, yet a
//    concurrent snapshot() is race-free.  snapshot() merges all shards;
//    after the writing threads have joined, the merged sums are exact.
//  * Detached means free: a default-constructed handle (or one resolved
//    from a null registry) makes every operation a single predictable
//    branch.  Instrumented components resolve MetricsRegistry::global(),
//    which is null unless a telemetry session is attached — see
//    util/telemetry.h.
//
// Naming convention: dot-separated lowercase paths, `<layer>.<component>.
// <metric>` (e.g. "sim.executor.events", "ctmc.uniformization.iterations");
// docs/OBSERVABILITY.md holds the catalogue.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace util {

class MetricsRegistry;

namespace metrics_detail {
struct Shard;
}  // namespace metrics_detail

/// Monotonic event counter.  add() is wait-free and never contends.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t n);
  void inc() { add(1); }
  bool attached() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Counter(MetricsRegistry* r, std::uint32_t cell) : registry_(r), cell_(cell) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Last-write-wins double value (e.g. "current ESS").  Across threads the
/// most recent set() wins (a global sequence stamp orders them).
class Gauge {
 public:
  Gauge() = default;
  void set(double v);
  bool attached() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  Gauge(MetricsRegistry* r, std::uint32_t cell) : registry_(r), cell_(cell) {}
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
};

/// Fixed-bucket histogram: `bounds` are inclusive upper bounds of the first
/// bounds.size() buckets; one implicit overflow bucket catches the rest.
/// record() is a linear scan over the (small, fixed) bound array — right for
/// the ~10-bucket diagnostics this repo needs.
class HistogramHandle {
 public:
  HistogramHandle() = default;
  void record(double v);
  bool attached() const { return registry_ != nullptr; }

 private:
  friend class MetricsRegistry;
  MetricsRegistry* registry_ = nullptr;
  std::uint32_t cell_ = 0;
  std::uint32_t buckets_ = 0;     ///< bound count (overflow bucket excluded)
  const double* bounds_ = nullptr;
};

/// Point-in-time merged view of a registry.  Keys iterate in sorted order
/// (std::map), so the *set and order* of keys is deterministic for a given
/// instrumented code path — values may differ run to run, keys may not.
struct MetricsSnapshot {
  struct HistogramData {
    std::vector<double> bounds;         ///< upper bounds, one per bucket
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;            ///< total samples
    double sum = 0.0;                   ///< sum of samples

    /// Bucket-interpolated quantile estimate for q in [0, 1]: linear within
    /// the bucket holding the q·count-th sample (first bucket's lower edge
    /// is min(0, bounds[0])).  Samples in the overflow bucket clamp to the
    /// last bound — a lower-bound estimate, all the fixed buckets can say.
    /// Returns 0 for an empty histogram.
    double percentile(double q) const;
  };

  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// The registry.  Instrument registration (counter()/gauge()/histogram())
/// takes a mutex and may allocate; handle operations never do (beyond a
/// thread's first touch of a registry, which allocates its shard).
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create by name.  Re-registration with the same name returns a
  /// handle to the same instrument; a histogram re-registered with
  /// different bounds keeps the original bounds (first registration wins).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  HistogramHandle histogram(const std::string& name,
                            std::vector<double> bounds);

  /// Merges every thread's shard.  Safe to call concurrently with handle
  /// writes (sums may then lag in-flight increments by a few).
  MetricsSnapshot snapshot() const;

  /// The process-wide default registry, or null when detached.  Components
  /// resolve this at construction/reset; TelemetrySession (util/telemetry.h)
  /// attaches/detaches it.
  static MetricsRegistry* global();
  static void set_global(MetricsRegistry* registry);

 private:
  friend class Counter;
  friend class Gauge;
  friend class HistogramHandle;

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };
  struct Instrument {
    std::string name;
    Kind kind;
    std::uint32_t cell = 0;      ///< first cell index in a shard
    std::vector<double> bounds;  ///< histogram only
  };

  /// Returns the calling thread's shard, creating (and registering) it on
  /// the thread's first touch of this registry.
  metrics_detail::Shard* shard();
  const Instrument& intern(const std::string& name, Kind kind,
                           std::vector<double> bounds);

  mutable std::mutex mutex_;
  /// deque: registration must not move existing Instruments — intern()
  /// hands out references (and histogram bound pointers) that outlive the
  /// registration lock.
  std::deque<Instrument> instruments_;
  std::uint32_t cells_ = 0;  ///< total cells per shard
  std::vector<std::unique_ptr<metrics_detail::Shard>> shards_;
  std::uint64_t id_ = 0;  ///< process-unique, guards thread-local caches
};

}  // namespace util
