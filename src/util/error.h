// Error handling primitives shared by every library in this repository.
//
// Philosophy (C++ Core Guidelines E.2/E.3): throw exceptions for errors that
// cannot be handled locally; use AHS_REQUIRE for precondition violations on
// public APIs (programming errors by the caller) and AHS_ASSERT for internal
// invariants.  Both throw rather than abort so that tests can exercise the
// failure paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace util {

/// Thrown when a caller violates a documented precondition of a public API.
class PreconditionError : public std::logic_error {
 public:
  explicit PreconditionError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when an internal invariant is violated (a bug in this library).
class InvariantError : public std::logic_error {
 public:
  explicit InvariantError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown when a model is structurally ill-formed (validation failures).
class ModelError : public std::runtime_error {
 public:
  explicit ModelError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown when a numerical routine fails to converge or receives
/// out-of-domain inputs.
class NumericalError : public std::runtime_error {
 public:
  explicit NumericalError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown on operating-system I/O failures (sockets, process control) that
/// the caller cannot handle locally.  Peer-disconnect conditions on a
/// socket are *returned* (send_line/recv_line → false), not thrown — a
/// client vanishing is normal service operation, not an error.
class IoError : public std::runtime_error {
 public:
  explicit IoError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_precondition(const char* expr, const char* file,
                                            int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void throw_invariant(const char* expr, const char* file,
                                         int line, const std::string& msg) {
  std::ostringstream os;
  os << "invariant violated: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace util

/// Precondition check on a public API.  `msg` may use stream syntax pieces
/// already formatted into a std::string.
#define AHS_REQUIRE(expr, msg)                                              \
  do {                                                                      \
    if (!(expr))                                                            \
      ::util::detail::throw_precondition(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)

/// Internal invariant check.
#define AHS_ASSERT(expr, msg)                                            \
  do {                                                                   \
    if (!(expr))                                                         \
      ::util::detail::throw_invariant(#expr, __FILE__, __LINE__, (msg)); \
  } while (0)
