#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>
#include <utility>

#include "util/string_util.h"

namespace util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::atomic<LogFormat> g_format{LogFormat::kText};
std::mutex g_mutex;
std::function<void(const std::string&)> g_sink;  // guarded by g_mutex

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

const char* level_name_lower(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "debug";
    case LogLevel::kInfo: return "info";
    case LogLevel::kWarn: return "warn";
    case LogLevel::kError: return "error";
  }
  return "?";
}

/// UTC wall-clock with millisecond resolution, ISO-8601.
std::string timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[80];
  std::snprintf(buf, sizeof buf, "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

/// Builds the one formatted line both formats share the emission path for.
std::string format_line(LogLevel level, const std::string& module,
                        const std::string& message) {
  const std::string ts = timestamp();
  if (g_format.load(std::memory_order_relaxed) == LogFormat::kJson) {
    return "{\"ts\": \"" + ts + "\", \"level\": \"" +
           level_name_lower(level) + "\", \"module\": \"" +
           json_escape(module) + "\", \"msg\": \"" + json_escape(message) +
           "\"}";
  }
  return ts + " [" + level_name(level) + "] [" + module + "] " + message;
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

void set_log_format(LogFormat format) { g_format.store(format); }

LogFormat log_format() { return g_format.load(); }

void set_log_sink(std::function<void(const std::string&)> sink) {
  const std::lock_guard<std::mutex> lock(g_mutex);
  g_sink = std::move(sink);
}

void log_message(LogLevel level, const std::string& module,
                 const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  const std::string line = format_line(level, module, message);
  const std::lock_guard<std::mutex> lock(g_mutex);
  if (g_sink) {
    g_sink(line);
    return;
  }
  // One formatted write; the terminating newline rides along so concurrent
  // emitters cannot interleave within a line.
  std::cerr << (line + '\n');
}

}  // namespace util
