#include "util/stopflag.h"

#include <csignal>

namespace util {

namespace {

std::atomic<bool> g_stop{false};

extern "C" void stop_signal_handler(int sig) {
  // First signal: request a cooperative stop.  Second signal: give up on
  // cooperation — restore the default disposition and re-raise, so the
  // process dies the way an uninstrumented one would.
  if (g_stop.exchange(true, std::memory_order_relaxed)) {
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

}  // namespace

std::atomic<bool>& stop_flag() { return g_stop; }

void install_stop_handlers() {
  std::signal(SIGINT, stop_signal_handler);
  std::signal(SIGTERM, stop_signal_handler);
}

}  // namespace util
