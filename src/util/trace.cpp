#include "util/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/error.h"
#include "util/string_util.h"

namespace util {

namespace {

// Packed ring layout: 4 words per event — [ts_ns, a, b, name<<8 | kind].
constexpr std::size_t kWordsPerEvent = 4;

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Recorders get a process-unique id so a thread-local cached ring from a
/// destroyed recorder can never be mistaken for a live one even if the
/// allocator reuses the address (same guard as MetricsRegistry shards).
std::atomic<std::uint64_t> g_recorder_ids{1};

std::atomic<TraceRecorder*> g_global{nullptr};

inline void word_store(std::uint64_t* w, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(*w).store(v, std::memory_order_relaxed);
}

inline std::uint64_t word_load(const std::uint64_t* w) {
  return std::atomic_ref<const std::uint64_t>(*w).load(
      std::memory_order_relaxed);
}

}  // namespace

struct TraceRecorder::Buffer {
  Buffer(std::uint32_t tid, std::size_t capacity)
      : tid(tid),
        capacity(capacity),
        words(new std::uint64_t[capacity * kWordsPerEvent]()) {}

  const std::uint32_t tid;
  const std::size_t capacity;
  const std::unique_ptr<std::uint64_t[]> words;
  /// Monotonic count of events ever written; slot = index % capacity.
  /// Published with release after the slot words, loaded with acquire by
  /// readers.
  std::atomic<std::uint64_t> head{0};
};

namespace {

struct TlRing {
  std::uint64_t recorder_id;
  TraceRecorder::Buffer* buffer;
};

thread_local std::vector<TlRing> tl_rings;

}  // namespace

TraceRecorder::TraceRecorder(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      clock_(&steady_now_ns),
      start_ns_(steady_now_ns()),
      id_(g_recorder_ids.fetch_add(1, std::memory_order_relaxed)) {}

TraceRecorder::~TraceRecorder() {
  if (global() == this) set_global(nullptr);
}

TraceRecorder* TraceRecorder::global() {
  return g_global.load(std::memory_order_acquire);
}

void TraceRecorder::set_global(TraceRecorder* recorder) {
  g_global.store(recorder, std::memory_order_release);
}

void TraceRecorder::set_clock_for_test(ClockFn fn) {
  clock_.store(fn, std::memory_order_relaxed);
  start_ns_ = fn();
}

std::uint64_t TraceRecorder::now() const {
  return clock_.load(std::memory_order_relaxed)();
}

TraceName TraceRecorder::name(const std::string& event_name) {
  return TraceName(this, intern(event_name.c_str()));
}

std::uint32_t TraceRecorder::intern(const char* event_name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = name_ids_.find(event_name);
  if (it != name_ids_.end()) return it->second;
  const auto id = static_cast<std::uint32_t>(names_.size());
  names_.emplace_back(event_name);
  name_ids_.emplace(event_name, id);
  return id;
}

TraceRecorder::Buffer* TraceRecorder::buffer() {
  for (const TlRing& r : tl_rings)
    if (r.recorder_id == id_) return r.buffer;
  const std::lock_guard<std::mutex> lock(mutex_);
  auto owned = std::make_unique<Buffer>(
      static_cast<std::uint32_t>(buffers_.size()) + 1, capacity_);
  Buffer* raw = owned.get();
  buffers_.push_back(std::move(owned));
  tl_rings.push_back({id_, raw});
  return raw;
}

void TraceRecorder::emit(std::uint32_t name_id, TraceKind kind,
                         std::uint64_t a, std::uint64_t b) {
  Buffer* buf = buffer();
  const std::uint64_t h = buf->head.load(std::memory_order_relaxed);
  std::uint64_t* slot =
      buf->words.get() + (h % buf->capacity) * kWordsPerEvent;
  word_store(slot + 0, now());
  word_store(slot + 1, a);
  word_store(slot + 2, b);
  word_store(slot + 3, (static_cast<std::uint64_t>(name_id) << 8) |
                           static_cast<std::uint64_t>(kind));
  buf->head.store(h + 1, std::memory_order_release);
}

TraceRecorder::Snapshot TraceRecorder::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  snap.names = names_;
  snap.capacity_per_thread = capacity_;
  snap.start_ns = start_ns_;
  snap.threads.reserve(buffers_.size());
  for (const auto& buf : buffers_) {
    ThreadSnapshot ts;
    ts.tid = buf->tid;
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    // The writer stores an event's words *before* publishing the advanced
    // head, so the slot of logical index `head - capacity` may be
    // mid-overwrite (by the unpublished event `head`) right now.  The safe
    // window is therefore the most recent capacity-1 events.
    const std::uint64_t lo =
        head >= buf->capacity ? head - buf->capacity + 1 : 0;
    std::vector<TraceEvent> events;
    events.reserve(static_cast<std::size_t>(head - lo));
    for (std::uint64_t i = lo; i < head; ++i) {
      const std::uint64_t* slot =
          buf->words.get() + (i % buf->capacity) * kWordsPerEvent;
      TraceEvent ev;
      ev.ts_ns = word_load(slot + 0);
      ev.a = word_load(slot + 1);
      ev.b = word_load(slot + 2);
      const std::uint64_t packed = word_load(slot + 3);
      ev.name = static_cast<std::uint32_t>(packed >> 8);
      ev.kind = static_cast<TraceKind>(packed & 0xff);
      events.push_back(ev);
    }
    // The writer may have lapped part of what we copied: any index its new
    // head has pushed out of the safe window was (or is being) overwritten,
    // so drop it — the remainder is a consistent suffix.
    const std::uint64_t head2 = buf->head.load(std::memory_order_acquire);
    const std::uint64_t lo2 =
        head2 >= buf->capacity ? head2 - buf->capacity + 1 : 0;
    if (lo2 > lo)
      events.erase(events.begin(),
                   events.begin() +
                       static_cast<std::ptrdiff_t>(
                           std::min<std::uint64_t>(lo2 - lo, events.size())));
    ts.recorded = head;
    ts.dropped = head - events.size();
    ts.events = std::move(events);
    snap.threads.push_back(std::move(ts));
  }
  return snap;
}

TraceRecorder::Summary TraceRecorder::summary() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Summary s;
  s.threads = buffers_.size();
  s.capacity_per_thread = capacity_;
  for (const auto& buf : buffers_) {
    const std::uint64_t head = buf->head.load(std::memory_order_acquire);
    // Mirrors snapshot(): once wrapped, the coherent window is capacity-1.
    const std::uint64_t retained =
        head < capacity_ ? head : capacity_ - 1;
    s.recorded += head;
    s.retained += retained;
    s.dropped += head - retained;
  }
  return s;
}

namespace {

void append_ts_us(std::ostringstream& os, std::uint64_t ts_ns,
                  std::uint64_t epoch_ns) {
  const std::uint64_t rel = ts_ns >= epoch_ns ? ts_ns - epoch_ns : 0;
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f",
                static_cast<double>(rel) / 1000.0);
  os << buf;
}

}  // namespace

std::string TraceRecorder::chrome_trace_json() const {
  const Snapshot snap = snapshot();
  std::ostringstream os;
  os << "{\"schema\": \"ahs.trace.v1\",\n\"displayTimeUnit\": \"ms\",\n";
  Summary s;
  for (const ThreadSnapshot& t : snap.threads) {
    ++s.threads;
    s.recorded += t.recorded;
    s.retained += t.events.size();
    s.dropped += t.dropped;
  }
  os << "\"otherData\": {\"threads\": " << s.threads
     << ", \"recorded\": " << s.recorded << ", \"retained\": " << s.retained
     << ", \"dropped\": " << s.dropped
     << ", \"capacity_per_thread\": " << snap.capacity_per_thread << "},\n";
  os << "\"traceEvents\": [";
  bool first = true;
  for (const ThreadSnapshot& t : snap.threads) {
    // Wraparound can leave unmatched leading "E" events (their "B" was
    // overwritten); a depth counter drops them so the document stays
    // well-nested per thread.
    std::uint64_t depth = 0;
    for (const TraceEvent& ev : t.events) {
      const char* ph = nullptr;
      switch (ev.kind) {
        case TraceKind::kBegin:
          ph = "B";
          ++depth;
          break;
        case TraceKind::kEnd:
          if (depth == 0) continue;
          --depth;
          ph = "E";
          break;
        case TraceKind::kInstant:
          ph = "i";
          break;
        case TraceKind::kCounter:
          ph = "C";
          break;
      }
      os << (first ? "\n" : ",\n");
      first = false;
      os << "{\"name\": \"" << json_escape(snap.names[ev.name])
         << "\", \"cat\": \"ahs\", \"ph\": \"" << ph
         << "\", \"pid\": 1, \"tid\": " << t.tid << ", \"ts\": ";
      append_ts_us(os, ev.ts_ns, snap.start_ns);
      if (ev.kind == TraceKind::kInstant)
        os << ", \"s\": \"t\", \"args\": {\"a\": " << ev.a
           << ", \"b\": " << ev.b << "}";
      else if (ev.kind == TraceKind::kCounter)
        os << ", \"args\": {\"value\": " << ev.a << "}";
      os << "}";
    }
  }
  os << "\n]}\n";
  return os.str();
}

void TraceRecorder::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  AHS_REQUIRE(out.good(), "cannot open trace output file '" + path + "'");
  out << chrome_trace_json();
}

}  // namespace util
