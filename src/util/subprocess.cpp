#include "util/subprocess.h"

#include <errno.h>
#include <signal.h>
#include <string.h>
#include <sys/wait.h>
#include <unistd.h>

#include "util/error.h"

namespace util {

pid_t spawn_process(const std::vector<std::string>& argv) {
  AHS_REQUIRE(!argv.empty(), "spawn_process needs at least the executable");
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv)
    cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0)
    throw IoError(std::string("fork: ") + ::strerror(errno));
  if (pid == 0) {
    ::execv(cargv[0], cargv.data());
    // Still here: the exec failed.  _exit (not exit) — running the parent's
    // atexit handlers from a half-initialized child corrupts shared state.
    ::_exit(127);
  }
  return pid;
}

namespace {

int decode_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -1;
}

}  // namespace

bool try_wait_process(pid_t pid, int* exit_code) {
  int status = 0;
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  if (r == 0) return false;
  if (r < 0) {
    // ECHILD: already reaped (or not our child) — report it as gone with
    // an error code so the caller falls through to its file check.
    *exit_code = -1;
    return true;
  }
  *exit_code = decode_status(status);
  return true;
}

int wait_process(pid_t pid) {
  int status = 0;
  for (;;) {
    const pid_t r = ::waitpid(pid, &status, 0);
    if (r >= 0) return decode_status(status);
    if (errno != EINTR) return -1;
  }
}

void kill_process(pid_t pid, bool hard) {
  if (pid > 0) ::kill(pid, hard ? SIGKILL : SIGTERM);
}

std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0)
    throw IoError(std::string("readlink /proc/self/exe: ") +
                  ::strerror(errno));
  buf[n] = '\0';
  return std::string(buf);
}

}  // namespace util
