// Bump/pool allocator for simulation hot-state.
//
// The discrete-event executor keeps a dozen per-activity arrays (schedules,
// cached rates, dirty stamps, RNG streams, ...) that are allocated once per
// Executor and walked together on every event.  Individually heap-allocated
// vectors land wherever malloc puts them; an Arena packs them into one
// contiguous block so the dirty-set walk touches adjacent cache lines, and
// makes the whole state trivially reusable across replications (reset
// rewrites values in place, never reallocates).
//
// Allocation is bump-pointer within fixed-size blocks.  When a block is
// exhausted a new one is chained (geometric growth, so total waste is
// bounded by the final block); requests larger than the current block size
// get a dedicated block.  There is no per-object free — `reset()` recycles
// every block at once, which is exactly the lifetime the executor needs.
// Not thread-safe; one arena per owner.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <span>
#include <vector>

namespace util {

class Arena {
 public:
  /// Initial block size in bytes (doubled on exhaustion up to kMaxBlock).
  explicit Arena(std::size_t block_bytes = 1 << 14)
      : next_block_bytes_(block_bytes < kMinBlock ? kMinBlock : block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Raw allocation of `bytes` aligned to `align` (a power of two).
  /// Never returns nullptr; zero-byte requests get a valid unique pointer.
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t)) {
    if (bytes == 0) bytes = 1;
    std::size_t p = aligned_cursor(align);
    if (current_ == nullptr || p + bytes > current_->size) {
      grow(bytes + align);
      p = aligned_cursor(align);
    }
    cursor_ = p + bytes;
    bytes_served_ += bytes;
    return current_->data + p;
  }

  /// Typed array of `n` value-initialized Ts (T must be trivially
  /// destructible — the arena never runs destructors).
  template <typename T>
  std::span<T> alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena memory is reclaimed without running destructors");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) new (p + i) T();
    return {p, n};
  }

  /// Recycles every block for reuse: previously returned pointers become
  /// dangling, no memory is released to the system.  All blocks but the
  /// largest are dropped, so a long-lived arena converges to one block.
  void reset() {
    if (blocks_.empty()) return;
    std::size_t largest = 0;
    for (std::size_t i = 1; i < blocks_.size(); ++i)
      if (blocks_[i]->size > blocks_[largest]->size) largest = i;
    if (largest != 0) std::swap(blocks_[0], blocks_[largest]);
    blocks_.resize(1);
    current_ = blocks_[0].get();
    cursor_ = 0;
    bytes_served_ = 0;
  }

  // --- introspection (tests, telemetry) ---------------------------------
  std::size_t num_blocks() const { return blocks_.size(); }
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b->size;
    return total;
  }
  std::size_t bytes_served() const { return bytes_served_; }

 private:
  static constexpr std::size_t kMinBlock = 256;
  static constexpr std::size_t kMaxBlock = std::size_t{1} << 22;  // 4 MiB

  struct Block {
    std::size_t size;
    alignas(std::max_align_t) unsigned char data[1];  // over-allocated
  };
  struct BlockDelete {
    void operator()(Block* b) const { ::operator delete(b); }
  };

  /// Cursor advanced so that data + cursor is `align`-aligned as an
  /// *address* — Block::data is only max_align_t-aligned, so rounding the
  /// offset alone would silently miss stricter (e.g. cache-line) requests.
  std::size_t aligned_cursor(std::size_t align) const {
    if (current_ == nullptr) return cursor_;
    const std::uintptr_t base =
        reinterpret_cast<std::uintptr_t>(current_->data);
    const std::uintptr_t a = (base + cursor_ + (align - 1)) & ~(align - 1);
    return static_cast<std::size_t>(a - base);
  }

  void grow(std::size_t need) {
    std::size_t size = next_block_bytes_;
    while (size < need) size *= 2;
    if (next_block_bytes_ < kMaxBlock) next_block_bytes_ *= 2;
    auto* raw = static_cast<Block*>(::operator new(sizeof(Block) + size));
    raw->size = size;
    blocks_.emplace_back(raw);
    current_ = raw;
    cursor_ = 0;
  }

  std::vector<std::unique_ptr<Block, BlockDelete>> blocks_;
  Block* current_ = nullptr;
  std::size_t cursor_ = 0;
  std::size_t next_block_bytes_;
  std::size_t bytes_served_ = 0;
};

}  // namespace util
