#include "util/metrics.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/error.h"

namespace util {

namespace metrics_detail {

// Cells live in fixed-size blocks published through atomic pointers, so a
// shard can grow (new instruments registered mid-run) without ever moving a
// cell another thread might be reading: the owning thread allocates a block
// and publishes it with release; snapshot() loads with acquire.
constexpr std::uint32_t kBlockSize = 256;
constexpr std::uint32_t kMaxBlocks = 64;

struct Shard {
  std::atomic<std::uint64_t*> blocks[kMaxBlocks] = {};

  ~Shard() {
    for (auto& b : blocks) delete[] b.load(std::memory_order_relaxed);
  }

  /// Owner-thread only: the cell's storage, allocating its block on first
  /// touch.  Cells start at 0.
  std::uint64_t* cell(std::uint32_t index) {
    const std::uint32_t bi = index / kBlockSize;
    AHS_ASSERT(bi < kMaxBlocks, "metrics shard block limit exceeded");
    std::uint64_t* block = blocks[bi].load(std::memory_order_relaxed);
    if (block == nullptr) {
      block = new std::uint64_t[kBlockSize]();
      blocks[bi].store(block, std::memory_order_release);
    }
    return block + index % kBlockSize;
  }

  /// Any thread: reads the cell, 0 if its block was never touched.
  std::uint64_t read(std::uint32_t index) const {
    const std::uint64_t* block =
        blocks[index / kBlockSize].load(std::memory_order_acquire);
    if (block == nullptr) return 0;
    return std::atomic_ref<const std::uint64_t>(block[index % kBlockSize])
        .load(std::memory_order_relaxed);
  }
};

namespace {

// Every cell has exactly one writer (the shard's thread), so relaxed
// load/modify/store through atomic_ref is race-free and avoids RMW lock
// prefixes entirely.
inline void cell_add(std::uint64_t* c, std::uint64_t n) {
  std::atomic_ref<std::uint64_t> ref(*c);
  ref.store(ref.load(std::memory_order_relaxed) + n,
            std::memory_order_relaxed);
}

inline void cell_store(std::uint64_t* c, std::uint64_t v) {
  std::atomic_ref<std::uint64_t>(*c).store(v, std::memory_order_relaxed);
}

inline void cell_add_double(std::uint64_t* c, double v) {
  std::atomic_ref<std::uint64_t> ref(*c);
  const double cur = std::bit_cast<double>(ref.load(std::memory_order_relaxed));
  ref.store(std::bit_cast<std::uint64_t>(cur + v), std::memory_order_relaxed);
}

/// Registries get a process-unique id, so a thread-local cached
/// (registry id, shard) pair from a destroyed registry can never be
/// mistaken for a live one even if the allocator reuses the address.
std::atomic<std::uint64_t> g_registry_ids{1};

/// Orders concurrent Gauge::set calls across threads.
std::atomic<std::uint64_t> g_gauge_stamp{1};

std::atomic<MetricsRegistry*> g_global{nullptr};

struct TlEntry {
  std::uint64_t registry_id;
  Shard* shard;
};

thread_local std::vector<TlEntry> tl_shards;

}  // namespace
}  // namespace metrics_detail

using metrics_detail::Shard;

MetricsRegistry::MetricsRegistry()
    : id_(metrics_detail::g_registry_ids.fetch_add(
          1, std::memory_order_relaxed)) {}

MetricsRegistry::~MetricsRegistry() {
  if (global() == this) set_global(nullptr);
}

MetricsRegistry* MetricsRegistry::global() {
  return metrics_detail::g_global.load(std::memory_order_acquire);
}

void MetricsRegistry::set_global(MetricsRegistry* registry) {
  metrics_detail::g_global.store(registry, std::memory_order_release);
}

Shard* MetricsRegistry::shard() {
  for (const auto& e : metrics_detail::tl_shards)
    if (e.registry_id == id_) return e.shard;
  auto owned = std::make_unique<Shard>();
  Shard* raw = owned.get();
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    shards_.push_back(std::move(owned));
  }
  metrics_detail::tl_shards.push_back({id_, raw});
  return raw;
}

const MetricsRegistry::Instrument& MetricsRegistry::intern(
    const std::string& name, Kind kind, std::vector<double> bounds) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const Instrument& ins : instruments_) {
    if (ins.name == name) {
      AHS_REQUIRE(ins.kind == kind,
                  "metric '" + name + "' re-registered as a different kind");
      return ins;
    }
  }
  std::uint32_t width = 1;
  if (kind == Kind::kGauge) width = 2;  // value bits + stamp
  if (kind == Kind::kHistogram) {
    AHS_REQUIRE(!bounds.empty(), "histogram '" + name + "' needs bounds");
    for (std::size_t i = 1; i < bounds.size(); ++i)
      AHS_REQUIRE(bounds[i] > bounds[i - 1],
                  "histogram '" + name + "' bounds must be increasing");
    // buckets (incl. overflow) + total count + sum bits
    width = static_cast<std::uint32_t>(bounds.size()) + 3;
  }
  AHS_REQUIRE(
      cells_ + width <= metrics_detail::kBlockSize * metrics_detail::kMaxBlocks,
      "metrics registry cell capacity exceeded");
  Instrument ins;
  ins.name = name;
  ins.kind = kind;
  ins.cell = cells_;
  ins.bounds = std::move(bounds);
  cells_ += width;
  instruments_.push_back(std::move(ins));
  return instruments_.back();
}

Counter MetricsRegistry::counter(const std::string& name) {
  return Counter(this, intern(name, Kind::kCounter, {}).cell);
}

Gauge MetricsRegistry::gauge(const std::string& name) {
  return Gauge(this, intern(name, Kind::kGauge, {}).cell);
}

HistogramHandle MetricsRegistry::histogram(const std::string& name,
                                           std::vector<double> bounds) {
  const Instrument& ins = intern(name, Kind::kHistogram, std::move(bounds));
  HistogramHandle h;
  h.registry_ = this;
  h.cell_ = ins.cell;
  h.buckets_ = static_cast<std::uint32_t>(ins.bounds.size());
  // Instruments are never erased or moved (deque), so this pointer stays
  // valid for the registry's lifetime.
  h.bounds_ = ins.bounds.data();
  return h;
}

void Counter::add(std::uint64_t n) {
  if (registry_ == nullptr) return;
  metrics_detail::cell_add(registry_->shard()->cell(cell_), n);
}

void Gauge::set(double v) {
  if (registry_ == nullptr) return;
  Shard* s = registry_->shard();
  const std::uint64_t stamp =
      metrics_detail::g_gauge_stamp.fetch_add(1, std::memory_order_relaxed);
  metrics_detail::cell_store(s->cell(cell_), std::bit_cast<std::uint64_t>(v));
  metrics_detail::cell_store(s->cell(cell_ + 1), stamp);
}

void HistogramHandle::record(double v) {
  if (registry_ == nullptr) return;
  Shard* s = registry_->shard();
  std::uint32_t bucket = buckets_;  // overflow unless a bound catches it
  for (std::uint32_t i = 0; i < buckets_; ++i) {
    if (v <= bounds_[i]) {
      bucket = i;
      break;
    }
  }
  metrics_detail::cell_add(s->cell(cell_ + bucket), 1);
  metrics_detail::cell_add(s->cell(cell_ + buckets_ + 1), 1);
  metrics_detail::cell_add_double(s->cell(cell_ + buckets_ + 2), v);
}

double MetricsSnapshot::HistogramData::percentile(double q) const {
  if (count == 0 || bounds.empty()) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const double target = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const double n = static_cast<double>(counts[b]);
    if (n == 0.0) continue;
    if (cum + n >= target) {
      if (b >= bounds.size()) return bounds.back();  // overflow bucket
      const double lower = b == 0 ? std::min(0.0, bounds[0]) : bounds[b - 1];
      const double upper = bounds[b];
      return lower + (upper - lower) * ((target - cum) / n);
    }
    cum += n;
  }
  return bounds.back();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  for (const Instrument& ins : instruments_) {
    switch (ins.kind) {
      case Kind::kCounter: {
        std::uint64_t total = 0;
        for (const auto& s : shards_) total += s->read(ins.cell);
        snap.counters[ins.name] = total;
        break;
      }
      case Kind::kGauge: {
        double value = 0.0;
        std::uint64_t best_stamp = 0;
        for (const auto& s : shards_) {
          const std::uint64_t stamp = s->read(ins.cell + 1);
          if (stamp > best_stamp) {
            best_stamp = stamp;
            value = std::bit_cast<double>(s->read(ins.cell));
          }
        }
        snap.gauges[ins.name] = value;
        break;
      }
      case Kind::kHistogram: {
        MetricsSnapshot::HistogramData h;
        h.bounds = ins.bounds;
        const auto buckets = static_cast<std::uint32_t>(ins.bounds.size());
        h.counts.assign(buckets + 1, 0);
        for (const auto& s : shards_) {
          for (std::uint32_t b = 0; b <= buckets; ++b)
            h.counts[b] += s->read(ins.cell + b);
          h.count += s->read(ins.cell + buckets + 1);
          h.sum += std::bit_cast<double>(s->read(ins.cell + buckets + 2));
        }
        snap.histograms[ins.name] = std::move(h);
        break;
      }
    }
  }
  return snap;
}

}  // namespace util
