#include "util/rng.h"

#include <cmath>

#include "util/error.h"

namespace util {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro's state must not be all-zero; splitmix64 makes that practically
  // impossible, but guard anyway for the adversarial seed.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform01_open_left() {
  return (static_cast<double>((*this)() >> 11) + 1.0) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  AHS_REQUIRE(lo <= hi, "uniform bounds out of order");
  return lo + (hi - lo) * uniform01();
}

std::uint64_t Rng::below(std::uint64_t bound) {
  AHS_REQUIRE(bound > 0, "bound must be positive");
  // Lemire's method: multiply-shift with rejection to remove modulo bias.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::exponential(double rate) {
  AHS_REQUIRE(rate > 0.0, "exponential rate must be positive");
  return -std::log(uniform01_open_left()) / rate;
}

Rng Rng::split(std::uint64_t idx) const {
  // Hash (seed, idx) through two splitmix64 rounds to derive a child seed.
  std::uint64_t sm = seed_ ^ (0xA0761D6478BD642Full + idx);
  std::uint64_t child = splitmix64(sm);
  sm ^= idx * 0xE7037ED1A0B428DBull;
  child ^= splitmix64(sm);
  return Rng(child);
}

Rng Rng::split(std::uint64_t idx, std::uint64_t domain) const {
  // Fold the domain into the seed through one splitmix64 round first, then
  // reuse the single-index construction; (idx, domain) pairs map to child
  // seeds injectively enough for stream independence in practice.
  std::uint64_t sm = seed_ ^ (0x8BB84B93962EACC9ull * (domain + 1));
  const std::uint64_t domain_seed = splitmix64(sm);
  Rng base(*this);
  base.seed_ = seed_ ^ domain_seed;
  return base.split(idx);
}

void Rng::long_jump() {
  static constexpr std::array<std::uint64_t, 4> kJump = {
      0x76E15D3EFEFDCBBFull, 0xC5004E441C522FB3ull, 0x77710069854EE241ull,
      0x39109BB02ACBE635ull};
  std::array<std::uint64_t, 4> t{};
  for (std::uint64_t jump : kJump) {
    for (int b = 0; b < 64; ++b) {
      if (jump & (1ull << b)) {
        t[0] ^= s_[0];
        t[1] ^= s_[1];
        t[2] ^= s_[2];
        t[3] ^= s_[3];
      }
      (*this)();
    }
  }
  s_ = t;
}

}  // namespace util
