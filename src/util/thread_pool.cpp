#include "util/thread_pool.h"

#include <algorithm>
#include <chrono>

#include "util/error.h"
#include "util/spans.h"

namespace util {

unsigned ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ThreadPool::ThreadPool(unsigned workers) {
  if (MetricsRegistry* reg = MetricsRegistry::global()) {
    tasks_submitted_ = reg->counter("util.thread_pool.tasks");
    busy_ns_ = reg->counter("util.thread_pool.busy_ns");
    queue_depth_ = reg->histogram("util.thread_pool.queue_depth",
                                  {0, 1, 2, 4, 8, 16, 32, 64, 128});
    timing_ = true;
  }
  if (workers == 0) workers = hardware_threads();
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  // Carry the submitter's span position into the task so fanned-out work
  // nests under the submitting phase (util/spans.h).  Timing is only worth
  // a clock read when a registry is attached.
  const SpanToken token = current_span_token();
  std::packaged_task<void()> packaged(
      [task = std::move(task), token, this] {
        SpanTokenScope scope(token);
        if (timing_) {
          const auto start = std::chrono::steady_clock::now();
          task();
          busy_ns_.add(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
        } else {
          task();
        }
      });
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    AHS_REQUIRE(!stop_, "submit on a stopping ThreadPool");
    queue_.push(std::move(packaged));
    queue_depth_.record(static_cast<double>(queue_.size()));
  }
  tasks_submitted_.inc();
  cv_.notify_one();
  return future;
}

void ThreadPool::parallel_for(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min<std::size_t>(size() + 1, n);
  if (chunks == 1) {
    fn(begin, end);
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  const std::size_t per = n / chunks;
  const std::size_t extra = n % chunks;  // first `extra` chunks get +1
  std::size_t lo = begin;
  std::size_t caller_lo = 0, caller_hi = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t hi = lo + per + (c < extra ? 1 : 0);
    if (c == 0) {
      caller_lo = lo;  // the caller runs the first chunk after enqueuing
      caller_hi = hi;
    } else {
      futures.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
    }
    lo = hi;
  }
  fn(caller_lo, caller_hi);
  for (auto& f : futures) f.get();  // rethrows the first chunk error
}

}  // namespace util
