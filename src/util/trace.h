// Flight recorder: per-thread lock-free binary ring buffers of timestamped
// trace events, exported as a Chrome trace-event / Perfetto-compatible JSON
// document (schema "ahs.trace.v1").
//
// Design (same discipline as util/metrics and AHS_SPAN):
//  * Handles, not lookups: a call site resolves `recorder.name("...")` once
//    and keeps the TraceName; the per-event operation is handle.instant(a, b).
//  * Detached means free: a default-constructed TraceName (or one resolved
//    from a null recorder) makes every operation a single predictable
//    branch.  Components resolve TraceRecorder::global(), which is null
//    unless a recorder is attached (bench --trace-out, tests).
//  * One writer per buffer: each thread records into its own ring; event
//    words are written through std::atomic_ref with relaxed ordering and the
//    ring head is published with release, so a concurrent snapshot() (the
//    exporter, the telemetry tap's summary) is race-free without locks on
//    the hot path.
//  * Bounded memory: each ring holds `capacity_per_thread` events (32 bytes
//    apiece).  When full, the writer overwrites the oldest event —
//    wraparound keeps the *most recent* window, which is what a flight
//    recorder is for — and the overwritten count is reported as `dropped`.
//    One slot is reserved for the writer's in-flight overwrite (words are
//    stored before the head is published), so once wrapped the coherent
//    retained window is capacity-1 events.
//
// What gets recorded: span begin/end (ScopedSpan emits into the attached
// recorder, so the AHS_SPAN vocabulary appears on the trace timeline for
// free), sweep-point lifecycle, solver milestones, checkpoint writes and
// resumes, and importance-sampling round boundaries.  See
// docs/OBSERVABILITY.md "Flight recorder" for the event catalogue.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace util {

class TraceRecorder;

/// Event phase, mapped to Chrome trace-event `ph` on export.
enum class TraceKind : std::uint8_t {
  kBegin = 0,    ///< duration begin ("B") — paired with kEnd on one thread
  kEnd = 1,      ///< duration end ("E")
  kInstant = 2,  ///< point event ("i"), args (a, b)
  kCounter = 3,  ///< sampled value track ("C"), value = a
};

/// One decoded event (the ring stores a packed 4-word form of this).
struct TraceEvent {
  std::uint64_t ts_ns = 0;  ///< recorder clock, ns since an arbitrary epoch
  std::uint64_t a = 0;      ///< event argument (index, count, ...)
  std::uint64_t b = 0;      ///< second argument
  std::uint32_t name = 0;   ///< interned name id (Snapshot::names index)
  TraceKind kind = TraceKind::kInstant;
};

/// Resolved event-name handle.  Default-constructed or resolved from a null
/// recorder, every emit is one branch.
class TraceName {
 public:
  TraceName() = default;
  bool attached() const { return recorder_ != nullptr; }

  void begin(std::uint64_t a = 0, std::uint64_t b = 0) const;
  void end() const;
  void instant(std::uint64_t a = 0, std::uint64_t b = 0) const;
  void counter(std::uint64_t value) const;

 private:
  friend class TraceRecorder;
  TraceName(TraceRecorder* r, std::uint32_t id) : recorder_(r), id_(id) {}
  TraceRecorder* recorder_ = nullptr;
  std::uint32_t id_ = 0;
};

/// The recorder: owns the per-thread rings and the interned name table.
class TraceRecorder {
 public:
  struct Buffer;  ///< opaque per-thread ring (trace.cpp)

  static constexpr std::size_t kDefaultCapacity = 1u << 16;  ///< events/thread

  explicit TraceRecorder(std::size_t capacity_per_thread = kDefaultCapacity);
  ~TraceRecorder();

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Find-or-create the event name; the returned handle emits with one
  /// branch.  Registration locks — resolve once, not per event.
  TraceName name(const std::string& event_name);

  /// Find-or-create by C string (ScopedSpan's path: span names are string
  /// literals).  Same cost class as name().
  std::uint32_t intern(const char* event_name);

  /// Any thread: record one event into the calling thread's ring.
  void emit(std::uint32_t name_id, TraceKind kind, std::uint64_t a = 0,
            std::uint64_t b = 0);

  /// Point-in-time copy of every thread's retained window.  Safe to call
  /// concurrently with writers: events a writer overwrites mid-copy are
  /// dropped from the result (never returned torn).
  struct ThreadSnapshot {
    std::uint32_t tid = 0;        ///< registration order, 1-based
    std::uint64_t recorded = 0;   ///< events ever emitted by this thread
    std::uint64_t dropped = 0;    ///< overwritten by wraparound (not retained)
    std::vector<TraceEvent> events;  ///< oldest first, ts_ns nondecreasing
  };
  struct Snapshot {
    std::vector<std::string> names;  ///< index = TraceEvent::name
    std::vector<ThreadSnapshot> threads;  ///< tid order
    std::uint64_t capacity_per_thread = 0;
    std::uint64_t start_ns = 0;  ///< recorder epoch (export time base)
  };
  Snapshot snapshot() const;

  /// Cheap aggregate for the TelemetryReport / tap documents (no event copy).
  struct Summary {
    std::uint64_t threads = 0;
    std::uint64_t recorded = 0;  ///< sum over threads
    std::uint64_t retained = 0;  ///< currently held in the rings
    std::uint64_t dropped = 0;   ///< recorded - retained
    std::uint64_t capacity_per_thread = 0;
  };
  Summary summary() const;

  /// The full Chrome trace-event JSON document (schema tag "ahs.trace.v1",
  /// `traceEvents` array, ts in microseconds relative to the recorder
  /// epoch).  Loadable by Perfetto / chrome://tracing.
  std::string chrome_trace_json() const;
  void write_chrome_trace(const std::string& path) const;

  /// The process-wide default recorder, or null when detached.
  static TraceRecorder* global();
  static void set_global(TraceRecorder* recorder);

  /// Test hook: replace the event clock (steady_clock ns by default) with a
  /// deterministic source so exports golden-compare.  Resets the epoch.
  using ClockFn = std::uint64_t (*)();
  void set_clock_for_test(ClockFn fn);

 private:
  friend class TraceName;

  Buffer* buffer();  ///< calling thread's ring, created on first emit
  std::uint64_t now() const;

  std::size_t capacity_;
  std::atomic<ClockFn> clock_;
  std::uint64_t start_ns_;
  mutable std::mutex mutex_;  ///< guards names_/name_ids_/buffers_
  std::vector<std::string> names_;
  std::map<std::string, std::uint32_t> name_ids_;
  std::vector<std::unique_ptr<Buffer>> buffers_;
  std::uint64_t id_;  ///< process-unique, guards thread-local ring caches
};

inline void TraceName::begin(std::uint64_t a, std::uint64_t b) const {
  if (recorder_ == nullptr) return;
  recorder_->emit(id_, TraceKind::kBegin, a, b);
}
inline void TraceName::end() const {
  if (recorder_ == nullptr) return;
  recorder_->emit(id_, TraceKind::kEnd);
}
inline void TraceName::instant(std::uint64_t a, std::uint64_t b) const {
  if (recorder_ == nullptr) return;
  recorder_->emit(id_, TraceKind::kInstant, a, b);
}
inline void TraceName::counter(std::uint64_t value) const {
  if (recorder_ == nullptr) return;
  recorder_->emit(id_, TraceKind::kCounter, value);
}

}  // namespace util
