// Small string helpers shared by the output and CLI layers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace util {

/// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Removes leading and trailing ASCII whitespace.
std::string trim(std::string_view s);

/// Joins with a separator.
std::string join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Formats a double compactly in scientific notation with `digits`
/// significant digits, e.g. 1.75e-07.
std::string format_sci(double value, int digits = 3);

/// Formats a double with fixed precision, trimming trailing zeros.
std::string format_fixed(double value, int max_decimals = 6);

/// Escapes a string for embedding in a JSON document (quotes not included).
std::string json_escape(std::string_view s);

/// Shortest round-trip decimal rendering of a double for JSON output
/// ("null" for non-finite values — JSON has no inf/nan).
std::string json_number(double v);

/// Parses a double, throwing util::PreconditionError on malformed input.
double parse_double(std::string_view s);

/// Parses a non-negative integer, throwing on malformed input.
long long parse_int(std::string_view s);

}  // namespace util
