#include "util/telemetry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/snapshot.h"
#include "util/string_util.h"
#include "util/table.h"

namespace util {

namespace {

void append_histogram(std::ostringstream& os,
                      const MetricsSnapshot::HistogramData& h) {
  os << "{\"bounds\": [";
  for (std::size_t i = 0; i < h.bounds.size(); ++i)
    os << (i ? ", " : "") << json_number(h.bounds[i]);
  os << "], \"counts\": [";
  for (std::size_t i = 0; i < h.counts.size(); ++i)
    os << (i ? ", " : "") << h.counts[i];
  os << "], \"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
     << ", \"p50\": " << json_number(h.percentile(0.50))
     << ", \"p90\": " << json_number(h.percentile(0.90))
     << ", \"p99\": " << json_number(h.percentile(0.99)) << "}";
}

void append_metrics(std::ostringstream& os, const MetricsSnapshot& m) {
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : m.counters) {
    os << (first ? "" : ", ") << '"' << json_escape(name) << "\": " << value;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : m.gauges) {
    os << (first ? "" : ", ") << '"' << json_escape(name)
       << "\": " << json_number(value);
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : m.histograms) {
    os << (first ? "" : ", ") << '"' << json_escape(name) << "\": ";
    append_histogram(os, h);
    first = false;
  }
  os << "}}";
}

void append_span(std::ostringstream& os, const SpanTree::Snapshot& s) {
  os << "{\"name\": \"" << json_escape(s.name) << "\", \"count\": " << s.count
     << ", \"seconds\": " << json_number(s.seconds) << ", \"children\": [";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    if (i) os << ", ";
    append_span(os, s.children[i]);
  }
  os << "]}";
}

void render_span(std::ostream& os, const SpanTree::Snapshot& s, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << s.name << ": " << format_fixed(s.seconds, 3) << " s";
  if (s.count != 1) os << " (" << s.count << "x)";
  os << "\n";
  for (const auto& c : s.children) render_span(os, c, depth + 1);
}

}  // namespace

namespace {

void append_trace_summary(std::ostringstream& os,
                          const TraceRecorder::Summary& t) {
  os << "{\"threads\": " << t.threads << ", \"recorded\": " << t.recorded
     << ", \"retained\": " << t.retained << ", \"dropped\": " << t.dropped
     << ", \"capacity_per_thread\": " << t.capacity_per_thread << "}";
}

}  // namespace

std::string TelemetryReport::to_json_fragment() const {
  std::ostringstream os;
  os << "{\"metrics\": ";
  append_metrics(os, metrics);
  os << ", \"spans\": ";
  append_span(os, spans);
  if (has_trace) {
    os << ", \"trace\": ";
    append_trace_summary(os, trace);
  }
  os << "}";
  return os.str();
}

std::string TelemetryReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\": \"ahs.telemetry.v1\", \"metrics\": ";
  append_metrics(os, metrics);
  os << ", \"spans\": ";
  append_span(os, spans);
  if (has_trace) {
    os << ", \"trace\": ";
    append_trace_summary(os, trace);
  }
  os << "}\n";
  return os.str();
}

void TelemetryReport::render_summary(std::ostream& os) const {
  os << "--- telemetry: phase spans ---\n";
  render_span(os, spans, 0);
  if (!metrics.counters.empty() || !metrics.gauges.empty()) {
    os << "--- telemetry: metrics ---\n";
    Table table({"metric", "value"});
    for (const auto& [name, value] : metrics.counters)
      table.add_row({name, std::to_string(value)});
    for (const auto& [name, value] : metrics.gauges)
      table.add_row({name, format_sci(value, 4)});
    os << table;
  }
  if (!metrics.histograms.empty()) {
    os << "--- telemetry: histograms ---\n";
    Table table(
        {"histogram", "count", "mean", "p50/p90/p99", "buckets (<=bound: n)"});
    for (const auto& [name, h] : metrics.histograms) {
      std::ostringstream buckets;
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) continue;
        if (buckets.tellp() > 0) buckets << " ";
        if (i < h.bounds.size())
          buckets << format_fixed(h.bounds[i], 6) << ":" << h.counts[i];
        else
          buckets << ">" << format_fixed(h.bounds.back(), 6) << ":"
                  << h.counts[i];
      }
      const std::string pcts =
          h.count ? format_sci(h.percentile(0.50), 3) + "/" +
                        format_sci(h.percentile(0.90), 3) + "/" +
                        format_sci(h.percentile(0.99), 3)
                  : "-";
      table.add_row({name, std::to_string(h.count),
                     h.count ? format_sci(h.sum / static_cast<double>(h.count),
                                          3)
                             : "-",
                     pcts, buckets.str()});
    }
    os << table;
  }
  if (has_trace) {
    os << "--- telemetry: flight recorder ---\n"
       << "threads " << trace.threads << ", events recorded " << trace.recorded
       << ", retained " << trace.retained << ", dropped " << trace.dropped
       << " (ring capacity " << trace.capacity_per_thread << "/thread)\n";
  }
}

void TelemetryReport::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  AHS_REQUIRE(out.good(), "cannot open telemetry output file '" + path + "'");
  out << to_json();
}

TelemetrySession::TelemetrySession()
    : prev_registry_(MetricsRegistry::global()), prev_spans_(SpanTree::global()) {
  MetricsRegistry::set_global(&registry_);
  SpanTree::set_global(&spans_);
}

TelemetrySession::~TelemetrySession() {
  MetricsRegistry::set_global(prev_registry_);
  SpanTree::set_global(prev_spans_);
}

TelemetryReport TelemetrySession::report() const {
  TelemetryReport r;
  r.metrics = registry_.snapshot();
  r.spans = spans_.snapshot();
  if (TraceRecorder* rec = TraceRecorder::global()) {
    r.has_trace = true;
    r.trace = rec->summary();
  }
  return r;
}

// ---------------------------------------------------------------------------
// TelemetryTap

namespace {

/// Depth-first search for the first span node with `name`; null if absent.
const SpanTree::Snapshot* find_span(const SpanTree::Snapshot& s,
                                    const std::string& name) {
  if (s.name == name) return &s;
  for (const auto& c : s.children)
    if (const SpanTree::Snapshot* hit = find_span(c, name)) return hit;
  return nullptr;
}

std::uint64_t counter_or_zero(const MetricsSnapshot& m,
                              const std::string& name) {
  const auto it = m.counters.find(name);
  return it == m.counters.end() ? 0 : it->second;
}

}  // namespace

TelemetryTap::TelemetryTap(std::string path, double interval_seconds)
    : path_(std::move(path)),
      interval_seconds_(interval_seconds > 0.0 ? interval_seconds : 1.0),
      start_(std::chrono::steady_clock::now()) {
  write_now();  // a reader attaching early sees a valid (empty) document
  thread_ = std::thread([this] { run(); });
}

TelemetryTap::~TelemetryTap() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  write_now();  // final state, so a tailer sees 100% when the run ends
}

void TelemetryTap::run() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    cv_.wait_for(lock,
                 std::chrono::duration<double>(interval_seconds_),
                 [this] { return stop_; });
    if (stop_) return;
    lock.unlock();
    write_now();
    lock.lock();
  }
}

std::string TelemetryTap::build_document() {
  MetricsSnapshot metrics;
  if (MetricsRegistry* reg = MetricsRegistry::global())
    metrics = reg->snapshot();
  SpanTree::Snapshot spans;
  if (SpanTree* tree = SpanTree::global()) spans = tree->snapshot();

  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  const std::uint64_t wall_unix = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::seconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());

  // Sweep progress: "ahs.sweep.points" counts every terminal point
  // (computed, restored, degraded); points_total is a gauge run_sweep sets
  // up front (0 outside a sweep).
  const std::uint64_t done = counter_or_zero(metrics, "ahs.sweep.points");
  std::uint64_t total = 0;
  if (const auto it = metrics.gauges.find("ahs.sweep.points_total");
      it != metrics.gauges.end() && it->second > 0.0)
    total = static_cast<std::uint64_t>(it->second);

  // Per-point ETA from the span tree: mean sweep.point wall time, scaled by
  // the observed parallelism (summed point-seconds per elapsed second).
  double eta = -1.0;
  if (total > done && done > 0) {
    if (const SpanTree::Snapshot* point = find_span(spans, "sweep.point");
        point != nullptr && point->count > 0 && elapsed > 0.0) {
      const double avg =
          point->seconds / static_cast<double>(point->count);
      const double parallelism = std::max(1.0, point->seconds / elapsed);
      eta = static_cast<double>(total - done) * avg / parallelism;
    }
  } else if (total != 0 && done >= total) {
    eta = 0.0;
  }

  std::ostringstream os;
  os << "{\"schema\": \"ahs.telemetry.live.v1\", \"seq\": " << seq_
     << ", \"wall_unix\": " << wall_unix
     << ", \"elapsed_seconds\": " << json_number(elapsed);
  os << ", \"progress\": {\"points_done\": " << done
     << ", \"points_total\": " << total << ", \"percent\": "
     << json_number(total > 0 ? 100.0 * static_cast<double>(done) /
                                    static_cast<double>(total)
                              : 0.0)
     << ", \"eta_seconds\": ";
  if (eta >= 0.0)
    os << json_number(eta);
  else
    os << "null";
  os << "}";
  os << ", \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : metrics.counters) {
    os << (first ? "" : ", ") << '"' << json_escape(name) << "\": " << value;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : metrics.gauges) {
    os << (first ? "" : ", ") << '"' << json_escape(name)
       << "\": " << json_number(value);
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : metrics.histograms) {
    os << (first ? "" : ", ") << '"' << json_escape(name)
       << "\": {\"count\": " << h.count
       << ", \"p50\": " << json_number(h.percentile(0.50))
       << ", \"p90\": " << json_number(h.percentile(0.90))
       << ", \"p99\": " << json_number(h.percentile(0.99)) << "}";
    first = false;
  }
  os << "}";
  if (TraceRecorder* rec = TraceRecorder::global()) {
    os << ", \"trace\": ";
    append_trace_summary(os, rec->summary());
  }
  os << "}\n";
  return os.str();
}

void TelemetryTap::write_now() {
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::string doc = build_document();
  atomic_write_file(path_, doc);
  ++seq_;
}

}  // namespace util
