#include "util/telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.h"
#include "util/string_util.h"
#include "util/table.h"

namespace util {

namespace {

void append_histogram(std::ostringstream& os,
                      const MetricsSnapshot::HistogramData& h) {
  os << "{\"bounds\": [";
  for (std::size_t i = 0; i < h.bounds.size(); ++i)
    os << (i ? ", " : "") << json_number(h.bounds[i]);
  os << "], \"counts\": [";
  for (std::size_t i = 0; i < h.counts.size(); ++i)
    os << (i ? ", " : "") << h.counts[i];
  os << "], \"count\": " << h.count << ", \"sum\": " << json_number(h.sum)
     << "}";
}

void append_metrics(std::ostringstream& os, const MetricsSnapshot& m) {
  os << "{\"counters\": {";
  bool first = true;
  for (const auto& [name, value] : m.counters) {
    os << (first ? "" : ", ") << '"' << json_escape(name) << "\": " << value;
    first = false;
  }
  os << "}, \"gauges\": {";
  first = true;
  for (const auto& [name, value] : m.gauges) {
    os << (first ? "" : ", ") << '"' << json_escape(name)
       << "\": " << json_number(value);
    first = false;
  }
  os << "}, \"histograms\": {";
  first = true;
  for (const auto& [name, h] : m.histograms) {
    os << (first ? "" : ", ") << '"' << json_escape(name) << "\": ";
    append_histogram(os, h);
    first = false;
  }
  os << "}}";
}

void append_span(std::ostringstream& os, const SpanTree::Snapshot& s) {
  os << "{\"name\": \"" << json_escape(s.name) << "\", \"count\": " << s.count
     << ", \"seconds\": " << json_number(s.seconds) << ", \"children\": [";
  for (std::size_t i = 0; i < s.children.size(); ++i) {
    if (i) os << ", ";
    append_span(os, s.children[i]);
  }
  os << "]}";
}

void render_span(std::ostream& os, const SpanTree::Snapshot& s, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << s.name << ": " << format_fixed(s.seconds, 3) << " s";
  if (s.count != 1) os << " (" << s.count << "x)";
  os << "\n";
  for (const auto& c : s.children) render_span(os, c, depth + 1);
}

}  // namespace

std::string TelemetryReport::to_json_fragment() const {
  std::ostringstream os;
  os << "{\"metrics\": ";
  append_metrics(os, metrics);
  os << ", \"spans\": ";
  append_span(os, spans);
  os << "}";
  return os.str();
}

std::string TelemetryReport::to_json() const {
  std::ostringstream os;
  os << "{\"schema\": \"ahs.telemetry.v1\", \"metrics\": ";
  append_metrics(os, metrics);
  os << ", \"spans\": ";
  append_span(os, spans);
  os << "}\n";
  return os.str();
}

void TelemetryReport::render_summary(std::ostream& os) const {
  os << "--- telemetry: phase spans ---\n";
  render_span(os, spans, 0);
  if (!metrics.counters.empty() || !metrics.gauges.empty()) {
    os << "--- telemetry: metrics ---\n";
    Table table({"metric", "value"});
    for (const auto& [name, value] : metrics.counters)
      table.add_row({name, std::to_string(value)});
    for (const auto& [name, value] : metrics.gauges)
      table.add_row({name, format_sci(value, 4)});
    os << table;
  }
  if (!metrics.histograms.empty()) {
    os << "--- telemetry: histograms ---\n";
    Table table({"histogram", "count", "mean", "buckets (<=bound: n)"});
    for (const auto& [name, h] : metrics.histograms) {
      std::ostringstream buckets;
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (h.counts[i] == 0) continue;
        if (buckets.tellp() > 0) buckets << " ";
        if (i < h.bounds.size())
          buckets << format_fixed(h.bounds[i], 6) << ":" << h.counts[i];
        else
          buckets << ">" << format_fixed(h.bounds.back(), 6) << ":"
                  << h.counts[i];
      }
      table.add_row({name, std::to_string(h.count),
                     h.count ? format_sci(h.sum / static_cast<double>(h.count),
                                          3)
                             : "-",
                     buckets.str()});
    }
    os << table;
  }
}

void TelemetryReport::write_json_file(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  AHS_REQUIRE(out.good(), "cannot open telemetry output file '" + path + "'");
  out << to_json();
}

TelemetrySession::TelemetrySession()
    : prev_registry_(MetricsRegistry::global()), prev_spans_(SpanTree::global()) {
  MetricsRegistry::set_global(&registry_);
  SpanTree::set_global(&spans_);
}

TelemetrySession::~TelemetrySession() {
  MetricsRegistry::set_global(prev_registry_);
  SpanTree::set_global(prev_spans_);
}

TelemetryReport TelemetrySession::report() const {
  TelemetryReport r;
  r.metrics = registry_.snapshot();
  r.spans = spans_.snapshot();
  return r;
}

}  // namespace util
