// A small fixed-size worker pool with a shared FIFO task queue — the one
// threading primitive every parallel layer builds on (sweep fan-out,
// sensitivity fan-out, row-partitioned sparse products).
//
// Design constraints, in priority order:
//   1. Determinism support: the pool never reorders results — callers index
//      output slots by task id, so numerical output is independent of the
//      worker count and of scheduling.
//   2. No work stealing, no per-thread queues: the workloads here are
//      coarse (one CTMC solve, one row block), so a single mutex-guarded
//      queue is never the bottleneck and keeps the code auditable under
//      ThreadSanitizer.
//   3. parallel_for shares the work with the *calling* thread, so a
//      ThreadPool(0) on a 1-core machine still makes progress and a pool is
//      usable for both task fan-out and data parallelism.
//
// parallel_for must not be called from inside a pool task (the chunk wait
// could then deadlock behind the caller's own queue entry); the sweep layer
// therefore never hands the same pool to the per-point solvers.
//
// Telemetry: submit() captures the submitter's phase-span token and
// re-establishes it inside the task (see util/spans.h), so fanned-out work
// aggregates under the submitting phase for any worker count.  When a
// metrics registry is attached at pool construction, the pool also records
// queue depth at submit, task count, and per-task busy time
// ("util.thread_pool.*").
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "util/metrics.h"

namespace util {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 picks the hardware concurrency.  Note the
  /// calling thread participates in parallel_for, so `workers` may
  /// reasonably be hardware_concurrency() - 1.
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (>= 1).
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Enqueues a task; the future resolves when it finishes (exceptions
  /// propagate through the future).
  std::future<void> submit(std::function<void()> task);

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into
  /// size() + 1 contiguous chunks; the calling thread executes one chunk
  /// itself and the call blocks until every chunk is done.  Chunk
  /// boundaries depend only on (begin, end, size()), never on scheduling.
  /// Throws the first chunk exception encountered.  Must not be called
  /// from inside a pool task.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t, std::size_t)>& fn);

  /// hardware_concurrency with a floor of 1 (the standard allows 0).
  static unsigned hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;

  // Telemetry (no-ops when no registry was attached at construction).
  Counter tasks_submitted_;
  Counter busy_ns_;
  HistogramHandle queue_depth_;
  bool timing_ = false;  ///< measure per-task busy time
};

}  // namespace util
