#include "util/spans.h"

#include <algorithm>
#include <atomic>
#include <chrono>

#include "util/trace.h"

namespace util {

struct SpanTree::Node {
  std::string name;
  Node* parent = nullptr;
  std::vector<Node*> children;  ///< guarded by the tree mutex
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
};

namespace {

std::atomic<SpanTree*> g_global_tree{nullptr};

/// The thread's adopted/open position.  A default token (null tree) means
/// "fall back to the global tree's root".
thread_local SpanToken tl_span;

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

SpanTree::SpanTree() {
  auto root = std::make_unique<Node>();
  root->name = "run";
  root_ = root.get();
  nodes_.push_back(std::move(root));
}

SpanTree::~SpanTree() {
  if (global() == this) set_global(nullptr);
}

SpanTree* SpanTree::global() {
  return g_global_tree.load(std::memory_order_acquire);
}

void SpanTree::set_global(SpanTree* tree) {
  g_global_tree.store(tree, std::memory_order_release);
}

SpanTree::Node* SpanTree::child(Node* parent, const char* name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (Node* c : parent->children)
    if (c->name == name) return c;
  auto node = std::make_unique<Node>();
  node->name = name;
  node->parent = parent;
  Node* raw = node.get();
  parent->children.push_back(raw);
  nodes_.push_back(std::move(node));
  return raw;
}

void SpanTree::record(Node* node, std::uint64_t elapsed_ns) {
  node->count.fetch_add(1, std::memory_order_relaxed);
  node->total_ns.fetch_add(elapsed_ns, std::memory_order_relaxed);
}

SpanTree::Snapshot SpanTree::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  struct Rec {
    static Snapshot walk(const Node* n) {
      Snapshot s;
      s.name = n->name;
      s.count = n->count.load(std::memory_order_relaxed);
      s.seconds =
          static_cast<double>(n->total_ns.load(std::memory_order_relaxed)) *
          1e-9;
      std::vector<const Node*> kids(n->children.begin(), n->children.end());
      std::sort(kids.begin(), kids.end(),
                [](const Node* a, const Node* b) { return a->name < b->name; });
      s.children.reserve(kids.size());
      for (const Node* c : kids) s.children.push_back(walk(c));
      return s;
    }
  };
  return Rec::walk(root_);
}

SpanToken current_span_token() {
  if (tl_span.tree != nullptr) return tl_span;
  SpanTree* tree = SpanTree::global();
  if (tree == nullptr) return {};
  return {tree, tree->root()};
}

SpanTokenScope::SpanTokenScope(SpanToken token)
    : saved_(tl_span), active_(token.tree != nullptr) {
  if (active_) tl_span = token;
}

SpanTokenScope::~SpanTokenScope() {
  if (active_) tl_span = saved_;
}

ScopedSpan::ScopedSpan(const char* name) : tree_(nullptr) {
  if ((trace_ = TraceRecorder::global()) != nullptr) {
    trace_name_ = trace_->intern(name);
    trace_->emit(trace_name_, TraceKind::kBegin);
  }
  const SpanToken at = current_span_token();
  if (at.tree == nullptr) return;
  tree_ = at.tree;
  parent_ = tl_span.node;  // null when we fell back to the global root
  node_ = tree_->child(at.node, name);
  tl_span = {tree_, node_};
  start_ns_ = now_ns();
}

ScopedSpan::~ScopedSpan() {
  if (trace_ != nullptr) trace_->emit(trace_name_, TraceKind::kEnd);
  if (tree_ == nullptr) return;
  tree_->record(node_, now_ns() - start_ns_);
  tl_span = {parent_ == nullptr ? nullptr : tree_, parent_};
}

}  // namespace util
