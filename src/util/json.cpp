#include "util/json.h"

#include <cctype>
#include <cstdlib>

#include "util/error.h"

namespace util {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

double JsonValue::number_at(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_number(fallback) : fallback;
}

std::string JsonValue::string_at(std::string_view key,
                                 const std::string& fallback) const {
  const JsonValue* v = find(key);
  return v != nullptr ? v->as_string(fallback) : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    require(pos_ == text_.size(), "trailing characters after JSON document");
    return v;
  }

 private:
  void fail(const std::string& what) const {
    AHS_REQUIRE(false,
                "JSON parse error at byte " + std::to_string(pos_) + ": " +
                    what);
  }

  void require(bool ok, const char* what) const {
    if (!ok) fail(what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    require(pos_ < text_.size() && text_[pos_] == c,
            "unexpected character");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = parse_string();
        return v;
      }
      case 't': {
        JsonValue v;
        require(consume_literal("true"), "invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        JsonValue v;
        require(consume_literal("false"), "invalid literal");
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        JsonValue v;
        require(consume_literal("null"), "invalid literal");
        return v;
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      require(c == ',', "expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      require(c == ',', "expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      require(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode(out); break;
        default: fail("invalid escape");
      }
    }
  }

  void append_unicode(std::string& out) {
    const unsigned cp = parse_hex4();
    // BMP only (no surrogate-pair recombination) — the emitters in this
    // repo never write astral-plane text.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  unsigned parse_hex4() {
    require(pos_ + 4 <= text_.size(), "truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else fail("invalid \\u escape");
    }
    return v;
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    require(pos_ > start, "expected a value");
    const std::string tok(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    require(end != nullptr && *end == '\0' && end != tok.c_str(),
            "malformed number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = d;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

}  // namespace util
