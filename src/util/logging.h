// Leveled logging to stderr.  Intentionally tiny: the libraries in this repo
// signal errors with exceptions; logging exists for progress reporting from
// the long-running estimation loops and for optional trace output.
#pragma once

#include <sstream>
#include <string>

namespace util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Global threshold; messages below it are discarded.  Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emits a line `[LEVEL] message` to stderr if `level >= threshold`.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace util

#define AHS_LOG_DEBUG ::util::detail::LogLine(::util::LogLevel::kDebug)
#define AHS_LOG_INFO ::util::detail::LogLine(::util::LogLevel::kInfo)
#define AHS_LOG_WARN ::util::detail::LogLine(::util::LogLevel::kWarn)
#define AHS_LOG_ERROR ::util::detail::LogLine(::util::LogLevel::kError)
