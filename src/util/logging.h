// Leveled logging.  Intentionally small: the libraries in this repo signal
// errors with exceptions; logging exists for progress reporting from the
// long-running estimation loops and for statistical-health warnings (e.g.
// the IS effective-sample-size floor in sim/transient).
//
// Concurrency: each message is formatted into one string and emitted with a
// single write under a mutex, so lines from parallel sweeps never interleave
// mid-line.  Format:
//
//   text  2026-08-06T12:34:56.789Z [WARN] [sim] message
//   json  {"ts": "2026-08-06T12:34:56.789Z", "level": "warn",
//          "module": "sim", "msg": "message"}
//
// set_log_format(LogFormat::kJson) switches every emission to one JSON
// object per line (machine consumption); both formats share the emission
// path.  set_log_sink() redirects emission (tests capture output with it).
#pragma once

#include <functional>
#include <sstream>
#include <string>

namespace util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };
enum class LogFormat { kText, kJson };

/// Global threshold; messages below it are discarded.  Default: kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Text (default) or one-JSON-object-per-line emission.
void set_log_format(LogFormat format);
LogFormat log_format();

/// Redirects emission: the sink receives each fully formatted line (no
/// trailing newline).  nullptr restores the default (stderr).  The sink is
/// invoked under the logging mutex — keep it fast and do not log from it.
void set_log_sink(std::function<void(const std::string& line)> sink);

/// Emits `message` tagged with `module` if `level >= threshold`.
void log_message(LogLevel level, const std::string& module,
                 const std::string& message);
inline void log_message(LogLevel level, const std::string& message) {
  log_message(level, "ahs", message);
}

namespace detail {
class LogLine {
 public:
  LogLine(LogLevel level, const char* module)
      : level_(level), module_(module) {}
  ~LogLine() { log_message(level_, module_, os_.str()); }
  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* module_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace util

// Module-tagged forms; the tag shows which subsystem spoke ("sim",
// "ctmc", "sweep", ...).
#define AHS_LOGM_DEBUG(module) \
  ::util::detail::LogLine(::util::LogLevel::kDebug, module)
#define AHS_LOGM_INFO(module) \
  ::util::detail::LogLine(::util::LogLevel::kInfo, module)
#define AHS_LOGM_WARN(module) \
  ::util::detail::LogLine(::util::LogLevel::kWarn, module)
#define AHS_LOGM_ERROR(module) \
  ::util::detail::LogLine(::util::LogLevel::kError, module)

// Untagged forms keep working (module "ahs").
#define AHS_LOG_DEBUG AHS_LOGM_DEBUG("ahs")
#define AHS_LOG_INFO AHS_LOGM_INFO("ahs")
#define AHS_LOG_WARN AHS_LOGM_WARN("ahs")
#define AHS_LOG_ERROR AHS_LOGM_ERROR("ahs")
