#include "util/socket.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "util/error.h"

namespace util {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw IoError(what + ": " + ::strerror(errno));
}

/// Fills a sockaddr_un for `path`, rejecting paths that do not fit the
/// fixed sun_path field (the classic silent-truncation trap).
sockaddr_un make_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path))
    throw IoError("unix socket path too long (" +
                  std::to_string(path.size()) + " bytes, max " +
                  std::to_string(sizeof(addr.sun_path) - 1) + "): " + path);
  ::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(other.fd_), buffer_(std::move(other.buffer_)) {
  other.fd_ = -1;
}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    buffer_ = std::move(other.buffer_);
    other.fd_ = -1;
  }
  return *this;
}

Socket Socket::connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  const sockaddr_un addr = make_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect " + path);
  }
  return Socket(fd);
}

bool Socket::send_line(const std::string& line) {
  if (fd_ < 0) return false;
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    // MSG_NOSIGNAL: a vanished peer must surface as a return value, not a
    // process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, framed.data() + off, framed.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) return false;
      throw_errno("send");
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool Socket::recv_line(std::string* line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line->assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (fd_ < 0) return false;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) return false;
      throw_errno("recv");
    }
    if (n == 0) return false;  // EOF; an unterminated tail is discarded
    buffer_.append(chunk, static_cast<std::size_t>(n));
  }
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

UnixListener::UnixListener(const std::string& path) : path_(path) {
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const sockaddr_un addr = make_addr(path);
  // A stale socket file from a crashed server would make bind fail with
  // EADDRINUSE even though nothing is listening; remove it first.  A *live*
  // server is not protected against — the deployment owns the path.
  ::unlink(path.c_str());
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind " + path);
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    ::unlink(path.c_str());
    errno = saved;
    throw_errno("listen " + path);
  }
}

UnixListener::~UnixListener() { close(); }

Socket UnixListener::accept_connection() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    // close() from another thread lands here (EBADF / EINVAL): signal a
    // clean shutdown rather than an error.
    if (fd_ < 0 || errno == EBADF || errno == EINVAL) return Socket();
    throw_errno("accept");
  }
}

void UnixListener::close() {
  if (fd_ >= 0) {
    // shutdown() wakes a blocked accept() on Linux; closing the fd after
    // invalidating fd_ keeps the accept loop's EBADF check race-benign.
    const int fd = fd_;
    fd_ = -1;
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    ::unlink(path_.c_str());
  }
}

}  // namespace util
