// Minimal JSON reader: a recursive-descent parser into a small value tree.
// The repo's telemetry/trace/tap documents are all *written* by hand-rolled
// emitters (util/telemetry, util/trace); this is the matching read side for
// the tools that consume them (examples/ahs_top tails telemetry_live.json,
// tests parse exported documents to assert they are never torn).
//
// Scope: strict RFC-8259 subset — objects, arrays, strings (with the
// standard escapes incl. \uXXXX for the BMP), numbers (parsed as double),
// true/false/null.  Parse failures throw util::PreconditionError with the
// byte offset.  Not a streaming parser; documents here are kilobytes.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace util {

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kObject, kArray };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  /// Insertion order preserved (the emitters write sorted keys anyway).
  std::vector<std::pair<std::string, JsonValue>> object;
  std::vector<JsonValue> array;

  bool is_null() const { return kind == Kind::kNull; }

  /// Object member lookup; null when absent or not an object.
  const JsonValue* find(std::string_view key) const;

  /// Typed accessors with defaults — the tolerant style a live-file tailer
  /// needs (a field missing from an older schema reads as the default).
  double as_number(double fallback = 0.0) const {
    return kind == Kind::kNumber ? number : fallback;
  }
  bool as_bool(bool fallback = false) const {
    return kind == Kind::kBool ? boolean : fallback;
  }
  const std::string& as_string(const std::string& fallback) const {
    return kind == Kind::kString ? str : fallback;
  }

  /// find() + as_number/as_string over one optional hop.
  double number_at(std::string_view key, double fallback = 0.0) const;
  std::string string_at(std::string_view key,
                        const std::string& fallback = "") const;
};

/// Parses one complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).  Throws util::PreconditionError on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace util
