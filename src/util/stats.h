// Online statistics for simulation output analysis.
//
// The paper's estimation protocol (§4.1): every plotted point is the mean of
// at least 10 000 simulation batches, run until the 95 % confidence interval
// is within a 0.1 relative half-width.  `RunningStat` is the Welford
// accumulator behind that; `ConfidenceInterval` packages the normal-theory
// interval; `BatchMeans` supports steady-state output analysis; `Histogram`
// supports distribution diagnostics in tests and examples.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

namespace util {

/// Two-sided normal critical value for the given confidence level.
/// Supported levels: 0.90, 0.95, 0.99 exactly; other levels are computed by
/// rational approximation of the inverse normal CDF.
double normal_critical_value(double confidence);

/// Inverse of the standard normal CDF (Acklam's rational approximation,
/// relative error < 1.15e-9).  Requires 0 < p < 1.
double inverse_normal_cdf(double p);

/// A confidence interval [mean - half_width, mean + half_width].
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = std::numeric_limits<double>::infinity();
  double confidence = 0.95;

  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }

  /// half_width / |mean|; +inf when mean == 0.  Note the mean-zero trap:
  /// an estimate that is still exactly 0 can never satisfy a relative
  /// criterion — sequential-stopping loops should combine this with an
  /// absolute floor (see the two-argument converged()).
  double relative_half_width() const;

  /// True when the interval is tighter than `rel` relative half-width.
  bool converged(double rel) const { return relative_half_width() <= rel; }

  /// Relative criterion with an absolute half-width floor: also converged
  /// when half_width <= abs (abs <= 0 disables the floor).  This is what
  /// rescues configurations whose estimate is (still) exactly 0, where the
  /// relative half-width is +inf forever.
  bool converged(double rel, double abs) const {
    return converged(rel) || (abs > 0.0 && half_width <= abs);
  }
};

/// Welford online mean/variance accumulator.  Numerically stable; O(1) push.
class RunningStat {
 public:
  /// The complete accumulator state, exposed for checkpointing: restoring
  /// a saved State reproduces the accumulator bit-for-bit, so an estimate
  /// resumed from a checkpoint is bitwise identical to an uninterrupted
  /// one (util/snapshot serializes the doubles as exact bit patterns).
  struct State {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };

  void push(double x);

  /// Merges another accumulator (parallel reduction, Chan et al.).
  void merge(const RunningStat& other);

  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; +inf when fewer than two observations.
  double std_error() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }
  /// Σx² of the pushed observations (recovered from the Welford state:
  /// m2 = Σ(x-mean)², so Σx² = m2 + n·mean²).
  double sum_squares() const;
  /// Kish effective sample size (Σx)²/Σx² — for importance-sampling weight
  /// observations this is the equivalent number of unweighted samples.
  /// Equals n when all observations are equal; 0 when empty or all zero.
  double effective_sample_size() const;

  /// Normal-theory confidence interval on the mean.
  ConfidenceInterval interval(double confidence = 0.95) const;

  void reset();

  State save() const { return {n_, mean_, m2_, min_, max_}; }
  void restore(const State& s);

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Specialized accumulator for Bernoulli observations (success indicators).
/// Exact binomial bookkeeping; the interval uses the Wilson score, which
/// behaves far better than Wald for the rare-event probabilities this
/// repository estimates.
class ProportionStat {
 public:
  void push(bool success);
  void push_count(std::uint64_t successes, std::uint64_t trials);

  std::uint64_t trials() const { return n_; }
  std::uint64_t successes() const { return k_; }
  double proportion() const;

  /// Wilson score interval.
  ConfidenceInterval interval(double confidence = 0.95) const;

 private:
  std::uint64_t n_ = 0;
  std::uint64_t k_ = 0;
};

/// Non-overlapping batch means for steady-state output analysis.
/// Observations are grouped into batches of `batch_size`; the batch means
/// feed a RunningStat, from which the usual normal-theory CI follows.
class BatchMeans {
 public:
  explicit BatchMeans(std::uint64_t batch_size);

  void push(double x);

  std::uint64_t batch_size() const { return batch_size_; }
  std::uint64_t completed_batches() const { return batches_.count(); }
  double mean() const { return batches_.mean(); }
  ConfidenceInterval interval(double confidence = 0.95) const;

  /// Lag-1 autocorrelation estimate across completed batch means; close to
  /// zero indicates the batch size is large enough.
  double lag1_autocorrelation() const;

 private:
  std::uint64_t batch_size_;
  std::uint64_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  RunningStat batches_;
  std::vector<double> means_;
};

/// Fixed-bin histogram over [lo, hi); out-of-range samples land in
/// underflow/overflow counters.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void push(double x);

  std::size_t bins() const { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const { return underflow_; }
  std::uint64_t overflow() const { return overflow_; }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  /// Empirical density of a bin: count / (total * width).
  double density(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// Kahan compensated summation — used where long reward accumulations would
/// otherwise lose precision (e.g. time-averaged rewards over 1e7 events).
class KahanSum {
 public:
  void add(double x);
  double value() const { return sum_; }

 private:
  double sum_ = 0.0;
  double c_ = 0.0;
};

}  // namespace util
