// Cooperative cancellation for long-running estimation loops.
//
// A single process-wide atomic stop flag, settable from a SIGINT/SIGTERM
// handler (the store is async-signal-safe) or programmatically.  Estimation
// loops take `const std::atomic<bool>*` options (sim::TransientOptions::stop,
// ahs::SweepOptions::stop) and poll at safe boundaries — between
// replication rounds and between sweep points — so a set flag leads to a
// final checkpoint flush and a clean return, never a mid-write kill.
//
// Second-signal escape hatch: the first SIGINT/SIGTERM requests a
// cooperative stop; a second one restores the default disposition and
// re-raises, so a wedged process can still be killed from the keyboard.
#pragma once

#include <atomic>

namespace util {

/// The process-wide stop flag.  Pass `&stop_flag()` into estimation
/// options to make them cancellable by install_stop_handlers().
std::atomic<bool>& stop_flag();

inline bool stop_requested() {
  return stop_flag().load(std::memory_order_relaxed);
}
inline void request_stop() {
  stop_flag().store(true, std::memory_order_relaxed);
}
/// Clears the flag (tests; or a driver starting a fresh phase).
inline void clear_stop() {
  stop_flag().store(false, std::memory_order_relaxed);
}

/// Installs SIGINT/SIGTERM handlers that set stop_flag().  Idempotent.
void install_stop_handlers();

}  // namespace util
