// Aligned console tables — the bench binaries print paper-style series with
// these, so that `bench_fig*` output reads like the figure it regenerates.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace util {

/// A simple column-aligned text table.  Columns are sized to the widest cell;
/// numeric cells are right-aligned, text cells left-aligned.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; must have exactly as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return headers_.size(); }

  /// Renders with a header underline and two-space column gaps.
  std::string render() const;

  /// Renders to a stream.
  friend std::ostream& operator<<(std::ostream& os, const Table& t);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace util
