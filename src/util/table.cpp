#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <ostream>
#include <sstream>

#include "util/error.h"

namespace util {

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  bool digit_seen = false;
  for (; i < s.size(); ++i) {
    const char c = s[i];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != 'e' && c != 'E' && c != '-' && c != '+') {
      return false;
    }
  }
  return digit_seen;
}
}  // namespace

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AHS_REQUIRE(!headers_.empty(), "a table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  AHS_REQUIRE(cells.size() == headers_.size(),
              "row width does not match header count");
  rows_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_cell = [&](const std::string& cell, std::size_t width,
                       bool right) {
    const std::size_t pad = width - cell.size();
    if (right) os << std::string(pad, ' ') << cell;
    else os << cell << std::string(pad, ' ');
  };

  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    emit_cell(headers_[c], widths[c], false);
  }
  os << '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c) os << "  ";
    os << std::string(widths[c], '-');
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      emit_cell(row[c], widths[c], looks_numeric(row[c]));
    }
    os << '\n';
  }
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  return os << t.render();
}

}  // namespace util
