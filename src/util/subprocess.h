// Worker-process control for the serve/ layer: fork+exec spawning,
// non-blocking reaping, and signal-based termination.  Deliberately tiny —
// the crash-safety story of ahs_server does NOT live here.  It lives in
// the durable point-result files (util/snapshot): a worker either produced
// a complete, identity-checked result file (atomic rename) or it did not,
// so the supervisor never needs to know *how* a worker died, only whether
// its file landed.
#pragma once

#include <sys/types.h>

#include <string>
#include <vector>

namespace util {

/// fork + execv.  `argv[0]` is the executable path (use self_exe_path()
/// to re-exec the current binary).  Throws IoError when the fork fails;
/// an exec failure surfaces as the child exiting 127.
pid_t spawn_process(const std::vector<std::string>& argv);

/// Non-blocking reap.  Returns true when `pid` has exited and fills
/// `*exit_code`: the exit status for a normal exit, or -signal when the
/// child was killed (SIGKILL → -9).  Returns false while still running.
bool try_wait_process(pid_t pid, int* exit_code);

/// Blocking reap; same exit-code convention.
int wait_process(pid_t pid);

/// SIGTERM (hard == false) or SIGKILL (hard == true).  Missing processes
/// are ignored — the race with natural exit is benign.
void kill_process(pid_t pid, bool hard);

/// Resolves /proc/self/exe — the canonical way a server re-execs itself
/// in worker mode regardless of argv[0] or cwd.
std::string self_exe_path();

}  // namespace util
