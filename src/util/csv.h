// CSV output for bench series, so figures can be re-plotted externally.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace util {

/// Writes rows of string cells as RFC-4180-ish CSV (quotes fields containing
/// commas, quotes, or newlines).  The writer owns the output file.
class CsvWriter {
 public:
  /// Opens `path` for writing, truncating; throws util::ModelError on
  /// failure.
  explicit CsvWriter(const std::string& path);

  /// Construction from an externally managed stream (used by tests).
  explicit CsvWriter(std::ostream& os);

  void write_row(const std::vector<std::string>& cells);

  /// Number of rows written so far.
  std::size_t rows_written() const { return rows_; }

 private:
  static std::string escape(const std::string& cell);

  std::ofstream file_;
  std::ostream* os_;
  std::size_t rows_ = 0;
};

}  // namespace util
