// Random-variate distributions for timed-activity firing delays.
//
// The paper's model uses exponential activities exclusively (§4.1 assumes
// constant occurrence rates), but the SAN engine supports the usual Möbius
// distribution set so that extensions (deterministic maneuver durations,
// Weibull wear-out failures, ...) can be studied without touching the engine.
//
// A Distribution is a small immutable value object.  `sample(rng)` draws a
// variate; `rate()` is defined only for Exponential (used by the CTMC
// generator, which requires an all-exponential model); `mean()` is defined
// for all.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "util/rng.h"

namespace util {

enum class DistKind {
  kExponential,
  kDeterministic,
  kUniform,
  kErlang,
  kWeibull,
  kLognormal,
};

/// Immutable description of a delay distribution.
class Distribution {
 public:
  /// Exponential with the given rate (> 0).  Mean = 1/rate.
  static Distribution Exponential(double rate);
  /// Point mass at `value` (>= 0).
  static Distribution Deterministic(double value);
  /// Uniform on [lo, hi], 0 <= lo <= hi.
  static Distribution Uniform(double lo, double hi);
  /// Erlang with `shape` (>=1) stages of rate `rate` (>0). Mean = shape/rate.
  static Distribution Erlang(int shape, double rate);
  /// Weibull with shape k > 0 and scale lambda > 0.
  static Distribution Weibull(double shape, double scale);
  /// Lognormal: log of the variate is Normal(mu, sigma), sigma >= 0.
  static Distribution Lognormal(double mu, double sigma);

  DistKind kind() const { return kind_; }

  /// True iff the distribution is exponential (memoryless).
  bool is_exponential() const { return kind_ == DistKind::kExponential; }

  /// Rate of an exponential distribution.  Precondition: is_exponential().
  double rate() const;

  /// Expected value.
  double mean() const;

  /// Draws one variate.
  double sample(Rng& rng) const;

  /// Human-readable description, e.g. "Exp(rate=12)".
  std::string describe() const;

  /// Parameters in declaration order (for tests and serialization).
  double param0() const { return p0_; }
  double param1() const { return p1_; }

  friend bool operator==(const Distribution& a, const Distribution& b) {
    return a.kind_ == b.kind_ && a.p0_ == b.p0_ && a.p1_ == b.p1_;
  }

 private:
  Distribution(DistKind kind, double p0, double p1)
      : kind_(kind), p0_(p0), p1_(p1) {}

  DistKind kind_;
  double p0_;
  double p1_;
};

/// Draws an index in [0, weights.size()) with probability proportional to
/// weights[i].  Requires at least one strictly positive weight and no
/// negative weights.
std::size_t sample_discrete(Rng& rng, std::span<const double> weights);
inline std::size_t sample_discrete(Rng& rng,
                                   const std::vector<double>& weights) {
  return sample_discrete(rng, std::span<const double>(weights));
}

}  // namespace util
