// Minimal declarative CLI-flag parser for the examples and bench binaries.
//
// Usage:
//   util::Cli cli("platoon_safety", "Evaluate AHS unsafety S(t).");
//   auto n    = cli.add_int("n", 10, "maximum vehicles per platoon");
//   auto lam  = cli.add_double("lambda", 1e-5, "base failure rate (/h)");
//   auto strat= cli.add_string("strategy", "DD", "DD|DC|CD|CC");
//   cli.parse(argc, argv);            // throws on unknown/malformed flags
//   use(*n, *lam, *strat);
//
// Flags are written `--name=value` or `--name value`; `--help` prints the
// option table and returns false from parse().
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace util {

class Cli {
 public:
  Cli(std::string program, std::string description);

  /// Registers a flag; the returned shared_ptr holds the parsed value after
  /// parse() (the default until then).
  std::shared_ptr<long long> add_int(const std::string& name,
                                     long long default_value,
                                     const std::string& help);
  std::shared_ptr<double> add_double(const std::string& name,
                                     double default_value,
                                     const std::string& help);
  std::shared_ptr<std::string> add_string(const std::string& name,
                                          std::string default_value,
                                          const std::string& help);
  std::shared_ptr<bool> add_flag(const std::string& name,
                                 const std::string& help);

  /// Parses argv.  Returns false if --help was requested (help text already
  /// printed to stdout); throws util::PreconditionError on malformed input.
  bool parse(int argc, const char* const* argv);

  /// The generated help text.
  std::string help() const;

 private:
  enum class Kind { kInt, kDouble, kString, kBool };
  struct Option {
    std::string name;
    std::string help;
    Kind kind;
    std::shared_ptr<long long> int_value;
    std::shared_ptr<double> double_value;
    std::shared_ptr<std::string> string_value;
    std::shared_ptr<bool> bool_value;
    std::string default_repr;
  };

  Option* find(const std::string& name);
  void assign(Option& opt, const std::string& value);

  std::string program_;
  std::string description_;
  std::vector<Option> options_;
};

}  // namespace util
