// The Configuration SAN submodel (Fig 8): initializes the vehicle
// replicas (n per platoon, paper §3.2.4) through an initial budget of
// capacity() id-assignment firings, and keeps assigning identities to runtime joiners
// (IN tokens produced by Dynamicity's Join).  The paper's ext_id counter is
// kept as a cumulative statistic.
#pragma once

#include <memory>

#include "ahs/parameters.h"
#include "san/atomic_model.h"

namespace ahs {

std::shared_ptr<san::AtomicModel> build_configuration_model(
    const Parameters& params);

}  // namespace ahs
