#include "ahs/sensitivity.h"

#include <cmath>

#include "ahs/lumped.h"
#include "util/error.h"

namespace ahs {

const char* to_string(ScalarParam p) {
  switch (p) {
    case ScalarParam::kLambda: return "lambda";
    case ScalarParam::kQIntrinsic: return "q_intrinsic";
    case ScalarParam::kJoinRate: return "join_rate";
    case ScalarParam::kLeaveRate: return "leave_rate";
    case ScalarParam::kChangeRate: return "change_rate";
    case ScalarParam::kTransitRate: return "transit_rate";
    case ScalarParam::kMuAll: return "mu(all maneuvers)";
    case ScalarParam::kMuTieN: return "mu(TIE-N)";
    case ScalarParam::kMuTie: return "mu(TIE)";
    case ScalarParam::kMuTieE: return "mu(TIE-E)";
    case ScalarParam::kMuGs: return "mu(GS)";
    case ScalarParam::kMuCs: return "mu(CS)";
    case ScalarParam::kMuAs: return "mu(AS)";
  }
  return "?";
}

const std::vector<ScalarParam>& all_scalar_params() {
  static const std::vector<ScalarParam> kAll = {
      ScalarParam::kLambda,     ScalarParam::kQIntrinsic,
      ScalarParam::kJoinRate,   ScalarParam::kLeaveRate,
      ScalarParam::kChangeRate, ScalarParam::kTransitRate,
      ScalarParam::kMuAll,      ScalarParam::kMuTieN,
      ScalarParam::kMuTie,      ScalarParam::kMuTieE,
      ScalarParam::kMuGs,       ScalarParam::kMuCs,
      ScalarParam::kMuAs};
  return kAll;
}

namespace {

int maneuver_index(ScalarParam p) {
  switch (p) {
    case ScalarParam::kMuTieN: return 0;
    case ScalarParam::kMuTie: return 1;
    case ScalarParam::kMuTieE: return 2;
    case ScalarParam::kMuGs: return 3;
    case ScalarParam::kMuCs: return 4;
    case ScalarParam::kMuAs: return 5;
    default: return -1;
  }
}

}  // namespace

double get_scalar(const Parameters& params, ScalarParam p) {
  switch (p) {
    case ScalarParam::kLambda: return params.base_failure_rate;
    case ScalarParam::kQIntrinsic: return params.q_intrinsic;
    case ScalarParam::kJoinRate: return params.join_rate;
    case ScalarParam::kLeaveRate: return params.leave_rate;
    case ScalarParam::kChangeRate: return params.change_rate;
    case ScalarParam::kTransitRate: return params.transit_rate;
    case ScalarParam::kMuAll: return params.maneuver_rates[0];
    default:
      return params.maneuver_rates[static_cast<std::size_t>(
          maneuver_index(p))];
  }
}

void set_scalar(Parameters& params, ScalarParam p, double value) {
  switch (p) {
    case ScalarParam::kLambda:
      params.base_failure_rate = value;
      return;
    case ScalarParam::kQIntrinsic:
      params.q_intrinsic = value;
      return;
    case ScalarParam::kJoinRate:
      params.join_rate = value;
      return;
    case ScalarParam::kLeaveRate:
      params.leave_rate = value;
      return;
    case ScalarParam::kChangeRate:
      params.change_rate = value;
      return;
    case ScalarParam::kTransitRate:
      params.transit_rate = value;
      return;
    case ScalarParam::kMuAll: {
      const double scale = value / params.maneuver_rates[0];
      for (double& mu : params.maneuver_rates) mu *= scale;
      return;
    }
    default:
      params.maneuver_rates[static_cast<std::size_t>(maneuver_index(p))] =
          value;
      return;
  }
}

std::vector<Elasticity> unsafety_elasticities(
    const Parameters& params, double t,
    const std::vector<ScalarParam>& which, double h) {
  AHS_REQUIRE(t > 0.0, "evaluation time must be > 0");
  AHS_REQUIRE(h > 0.0 && h < 0.5, "relative step must be in (0, 0.5)");
  params.validate();

  const double s0 = LumpedModel(params).unsafety({t})[0];
  AHS_REQUIRE(s0 > 0.0, "unsafety is zero at the evaluation point");

  std::vector<Elasticity> out;
  out.reserve(which.size());
  for (ScalarParam p : which) {
    const double theta = get_scalar(params, p);
    // q_intrinsic is capped at 1: fall back to a one-sided difference when
    // the + step would leave the domain.
    double up_factor = 1.0 + h;
    double down_factor = 1.0 - h;
    if (p == ScalarParam::kQIntrinsic && theta * up_factor > 1.0)
      up_factor = 1.0;

    Parameters up = params;
    set_scalar(up, p, theta * up_factor);
    Parameters down = params;
    set_scalar(down, p, theta * down_factor);

    const double s_up = up_factor == 1.0
                            ? s0
                            : LumpedModel(up).unsafety({t})[0];
    const double s_down = LumpedModel(down).unsafety({t})[0];
    const double dlns = std::log(s_up) - std::log(s_down);
    const double dlntheta = std::log(up_factor) - std::log(down_factor);
    out.push_back({p, theta, s0, dlns / dlntheta});
  }
  return out;
}

std::vector<Elasticity> unsafety_elasticities(const Parameters& params,
                                              double t, double h) {
  return unsafety_elasticities(params, t, all_scalar_params(), h);
}

}  // namespace ahs
