#include "ahs/sensitivity.h"

#include <cmath>
#include <future>
#include <memory>

#include "ahs/lumped.h"
#include "util/error.h"
#include "util/thread_pool.h"

namespace ahs {

const char* to_string(ScalarParam p) {
  switch (p) {
    case ScalarParam::kLambda: return "lambda";
    case ScalarParam::kQIntrinsic: return "q_intrinsic";
    case ScalarParam::kJoinRate: return "join_rate";
    case ScalarParam::kLeaveRate: return "leave_rate";
    case ScalarParam::kChangeRate: return "change_rate";
    case ScalarParam::kTransitRate: return "transit_rate";
    case ScalarParam::kMuAll: return "mu(all maneuvers)";
    case ScalarParam::kMuTieN: return "mu(TIE-N)";
    case ScalarParam::kMuTie: return "mu(TIE)";
    case ScalarParam::kMuTieE: return "mu(TIE-E)";
    case ScalarParam::kMuGs: return "mu(GS)";
    case ScalarParam::kMuCs: return "mu(CS)";
    case ScalarParam::kMuAs: return "mu(AS)";
  }
  return "?";
}

const std::vector<ScalarParam>& all_scalar_params() {
  static const std::vector<ScalarParam> kAll = {
      ScalarParam::kLambda,     ScalarParam::kQIntrinsic,
      ScalarParam::kJoinRate,   ScalarParam::kLeaveRate,
      ScalarParam::kChangeRate, ScalarParam::kTransitRate,
      ScalarParam::kMuAll,      ScalarParam::kMuTieN,
      ScalarParam::kMuTie,      ScalarParam::kMuTieE,
      ScalarParam::kMuGs,       ScalarParam::kMuCs,
      ScalarParam::kMuAs};
  return kAll;
}

namespace {

int maneuver_index(ScalarParam p) {
  switch (p) {
    case ScalarParam::kMuTieN: return 0;
    case ScalarParam::kMuTie: return 1;
    case ScalarParam::kMuTieE: return 2;
    case ScalarParam::kMuGs: return 3;
    case ScalarParam::kMuCs: return 4;
    case ScalarParam::kMuAs: return 5;
    default: return -1;
  }
}

}  // namespace

double get_scalar(const Parameters& params, ScalarParam p) {
  switch (p) {
    case ScalarParam::kLambda: return params.base_failure_rate;
    case ScalarParam::kQIntrinsic: return params.q_intrinsic;
    case ScalarParam::kJoinRate: return params.join_rate;
    case ScalarParam::kLeaveRate: return params.leave_rate;
    case ScalarParam::kChangeRate: return params.change_rate;
    case ScalarParam::kTransitRate: return params.transit_rate;
    case ScalarParam::kMuAll: return params.maneuver_rates[0];
    default:
      return params.maneuver_rates[static_cast<std::size_t>(
          maneuver_index(p))];
  }
}

void set_scalar(Parameters& params, ScalarParam p, double value) {
  switch (p) {
    case ScalarParam::kLambda:
      params.base_failure_rate = value;
      return;
    case ScalarParam::kQIntrinsic:
      params.q_intrinsic = value;
      return;
    case ScalarParam::kJoinRate:
      params.join_rate = value;
      return;
    case ScalarParam::kLeaveRate:
      params.leave_rate = value;
      return;
    case ScalarParam::kChangeRate:
      params.change_rate = value;
      return;
    case ScalarParam::kTransitRate:
      params.transit_rate = value;
      return;
    case ScalarParam::kMuAll: {
      const double scale = value / params.maneuver_rates[0];
      for (double& mu : params.maneuver_rates) mu *= scale;
      return;
    }
    default:
      params.maneuver_rates[static_cast<std::size_t>(maneuver_index(p))] =
          value;
      return;
  }
}

std::vector<Elasticity> unsafety_elasticities(
    const Parameters& params, double t,
    const std::vector<ScalarParam>& which,
    const SensitivityOptions& options) {
  const double h = options.h;
  AHS_REQUIRE(t > 0.0, "evaluation time must be > 0");
  AHS_REQUIRE(h > 0.0 && h < 0.5, "relative step must be in (0, 0.5)");
  params.validate();

  // One shared exploration covers the base point and every perturbed set
  // whose fingerprint matches (rate-only perturbations — the common case);
  // the rare structure-changing step (e.g. q stepping off its boundary 1)
  // falls back to a cold build.
  const std::shared_ptr<const LumpedStructure> structure =
      explore_lumped_structure(params);

  // Job list: slot 0 is the base solve, then up/down per parameter (the
  // up slot is skipped where a boundary forces a one-sided difference).
  struct Job {
    Parameters params;
    double s = 0.0;
  };
  std::vector<Job> jobs;
  jobs.push_back({params});
  struct Diff {
    double theta;
    double up_factor, down_factor;
    std::size_t up_job, down_job;  ///< up_job == 0 means "reuse s0"
  };
  std::vector<Diff> diffs;
  diffs.reserve(which.size());
  for (ScalarParam p : which) {
    const double theta = get_scalar(params, p);
    // q_intrinsic is capped at 1: fall back to a one-sided difference when
    // the + step would leave the domain.
    double up_factor = 1.0 + h;
    const double down_factor = 1.0 - h;
    if (p == ScalarParam::kQIntrinsic && theta * up_factor > 1.0)
      up_factor = 1.0;

    Diff d{theta, up_factor, down_factor, 0, 0};
    if (up_factor != 1.0) {
      Parameters up = params;
      set_scalar(up, p, theta * up_factor);
      d.up_job = jobs.size();
      jobs.push_back({std::move(up)});
    }
    Parameters down = params;
    set_scalar(down, p, theta * down_factor);
    d.down_job = jobs.size();
    jobs.push_back({std::move(down)});
    diffs.push_back(d);
  }

  auto solve = [&](Job& job) {
    const bool same_structure =
        job.params.structural_fingerprint() == structure->fingerprint;
    LumpedModel model = same_structure ? LumpedModel(job.params, structure)
                                       : LumpedModel(job.params);
    job.s = model.unsafety({t})[0];
  };
  if (options.threads == 1) {
    for (Job& job : jobs) solve(job);
  } else {
    util::ThreadPool pool(options.threads);
    std::vector<std::future<void>> futures;
    futures.reserve(jobs.size());
    for (Job& job : jobs)
      futures.push_back(pool.submit([&solve, &job] { solve(job); }));
    for (auto& f : futures) f.get();
  }

  const double s0 = jobs[0].s;
  AHS_REQUIRE(s0 > 0.0, "unsafety is zero at the evaluation point");

  std::vector<Elasticity> out;
  out.reserve(which.size());
  for (std::size_t i = 0; i < which.size(); ++i) {
    const Diff& d = diffs[i];
    const double s_up = d.up_job == 0 ? s0 : jobs[d.up_job].s;
    const double s_down = jobs[d.down_job].s;
    const double dlns = std::log(s_up) - std::log(s_down);
    const double dlntheta = std::log(d.up_factor) - std::log(d.down_factor);
    out.push_back({which[i], d.theta, s0, dlns / dlntheta});
  }
  return out;
}

std::vector<Elasticity> unsafety_elasticities(
    const Parameters& params, double t,
    const std::vector<ScalarParam>& which, double h) {
  SensitivityOptions options;
  options.h = h;
  return unsafety_elasticities(params, t, which, options);
}

std::vector<Elasticity> unsafety_elasticities(const Parameters& params,
                                              double t, double h) {
  return unsafety_elasticities(params, t, all_scalar_params(), h);
}

}  // namespace ahs
