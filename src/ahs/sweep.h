// Parallel parameter-sweep engine: evaluates S(t) for a batch of parameter
// sets concurrently on a util::ThreadPool, reusing the explored state-space
// structure across points that differ only in rate values.
//
// Every figure bench is a sweep — fig 11 varies λ, fig 12 (n, λ), fig 13
// the load (join, leave), fig 14 the strategy — so this is the layer where
// wall-clock is won: the per-point CTMC solves are independent and the BFS
// exploration is shared via StudyCache whenever the points' structural
// fingerprints coincide.
//
// Determinism: each point is evaluated by thread-count-independent code
// (the solver's optional internal parallelism is bitwise stable, and the
// sweep never hands its own pool down into a point), and results land in
// slots indexed by input order — so the output is point-for-point identical
// to a sequential loop, for any thread count.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ahs/parameters.h"
#include "ahs/study.h"
#include "util/snapshot.h"

namespace util {
class ThreadPool;
}

namespace ahs {

/// One sweep point: a full parameter set plus a label for logs/CSV.
struct SweepPoint {
  std::string label;
  Parameters params;
};

/// One grid axis: a parameter name (for labels), its values, and a setter
/// applying a value to a Parameters.
struct GridAxis {
  std::string name;
  std::vector<double> values;
  std::function<void(Parameters&, double)> set;
};

/// 1-D grid: `base` with axis.set applied for each value.  Labels are
/// "name=value".
std::vector<SweepPoint> make_grid(const Parameters& base,
                                  const GridAxis& axis);

/// 2-D grid in row-major order (outer varies slowest).  Labels are
/// "outer=v1,inner=v2".
std::vector<SweepPoint> make_grid(const Parameters& base,
                                  const GridAxis& outer,
                                  const GridAxis& inner);

struct SweepOptions {
  /// Engine + engine knobs for every point.  `study.pool` must stay null —
  /// the sweep parallelizes across points, not inside them (see
  /// StudyOptions::pool on why both at once would deadlock).
  StudyOptions study;

  /// Worker threads: 0 = hardware concurrency, 1 = sequential in the
  /// calling thread (no pool is created).
  unsigned threads = 0;

  /// Share explored state-space structure across same-fingerprint points
  /// (CTMC engines).  Off forces a cold BFS per point.
  bool reuse_structure = true;

  // ---- robustness (docs/ROBUSTNESS.md) --------------------------------

  /// Directory for durable per-point result files and in-flight transient
  /// checkpoints ("" disables persistence).  Created if absent.
  std::string checkpoint_dir;
  /// Resume a previous sweep from checkpoint_dir: points whose result file
  /// is present and matches (parameters, times, options, seed) are
  /// restored bit-for-bit and skipped; in-flight simulation points resume
  /// from their transient checkpoint.  A mismatched file throws
  /// util::SnapshotError — stale state is rejected, never merged.
  bool resume = false;
  /// Per-point wall-clock budget in seconds (simulation engines; 0 = off).
  /// A point that exhausts its budget is recorded as degraded — its
  /// partial progress stays in the transient checkpoint for a later
  /// resume — instead of stalling the whole sweep.
  double point_timeout_seconds = 0.0;
  /// Evaluation attempts per point before a throwing point is recorded as
  /// degraded instead of aborting the sweep (>= 1).
  int max_attempts = 2;
  /// Cooperative cancellation flag (e.g. &util::stop_flag()), polled
  /// before each point and inside simulation estimates; a set flag skips
  /// the remaining points after flushing in-flight checkpoints.
  const std::atomic<bool>* stop = nullptr;
};

/// What happened to one sweep point.
enum class PointOutcome {
  kComputed,  ///< evaluated in this run (and persisted, if configured)
  kRestored,  ///< loaded bit-for-bit from its durable result file
  kDegraded,  ///< kept failing or exhausted its budget; curve is partial
  kSkipped,   ///< not evaluated (cooperative stop)
};

const char* to_string(PointOutcome o);

struct SweepResult {
  /// curves[i] is the result for points[i] — same order, any thread count.
  std::vector<UnsafetyCurve> curves;
  /// Whether point i reused a cached structure (false for the first point
  /// of each fingerprint group and for simulation engines).
  std::vector<bool> structure_cache_hit;
  /// Wall-clock seconds spent evaluating point i.
  std::vector<double> point_seconds;
  /// Wall-clock seconds for the whole sweep (includes scheduling).
  double total_seconds = 0.0;
  /// Per-point outcome; curves[i] is authoritative only for kComputed and
  /// kRestored points.
  std::vector<PointOutcome> outcome;
  /// For kDegraded points: why (exception text or "timeout").
  std::vector<std::string> degraded_reason;
  /// The stop flag fired before every point completed; checkpoints hold
  /// the progress and a --resume rerun finishes the job.
  bool cancelled = false;
  /// Shared Poisson-window cache traffic (CTMC engines; both 0 otherwise).
  /// A hit means a point reused a neighbor's uniformization window and
  /// truncation bounds instead of recomputing them — see ctmc::PoissonCache.
  std::uint64_t poisson_cache_hits = 0;
  std::uint64_t poisson_cache_misses = 0;
  /// Sweep-internal warm-start traffic (adaptive CTMC solves only; both 0
  /// otherwise).  A hit means a follower point confirmed its
  /// quasi-stationary plateau against the shape published by its structure
  /// group's cold build and extrapolated after a short confirmation run
  /// instead of a full cold lookback window — see ctmc::WarmStartCache.
  /// Persisting sweeps write every published shape to
  /// `<checkpoint_dir>/warm_starts.cache` (snapshot kind "sweep-warm"), so
  /// a resumed sweep whose cold builds were *restored* preloads the exact
  /// shapes the interrupted run published — recomputed followers hit the
  /// warm criteria and reproduce the uninterrupted run bit-for-bit,
  /// iteration counts included.
  std::uint64_t warm_start_hits = 0;
  std::uint64_t warm_start_misses = 0;
  /// Matrix–vector products summed over every point's transient solves
  /// (Σ curves[i].solver_iterations; 0 for simulation engines) — the
  /// iteration count the "Iteration counts" work of docs/PERFORMANCE.md
  /// tracks, reported per point by the fig-12 bench.
  std::uint64_t total_solver_iterations = 0;

  std::size_t degraded_count() const;
  /// True when every point carries an authoritative result.
  bool complete() const;
};

/// Evaluates S(t) at `times` for every point.  Cold structure builds (one
/// per distinct fingerprint) run first, concurrently; the remaining points
/// then run concurrently with guaranteed cache hits.
SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const std::vector<double>& times,
                      const SweepOptions& options = {});

// ---- durable point-file protocol --------------------------------------
// The per-point result files a persisting sweep writes (`point_<i>.result`,
// snapshot kind "sweep-point") double as the `ahs_server` service's
// job/result wire format: a worker *process* evaluates one point and writes
// exactly this file; the supervisor reads it back, and a SIGKILLed worker
// is restartable for free because the file either exists complete (atomic
// rename) or not at all.  The identity and codec functions are public for
// that reason — serve/worker.cpp and run_sweep must agree byte-for-byte.

/// Identity of a durable point-result file: the point (index, label, full
/// parameter values), the evaluation grid, and every result-determining
/// study option.  Any difference rejects the file on resume.
std::uint64_t point_option_hash(std::size_t index, const SweepPoint& point,
                                const std::vector<double>& times,
                                const StudyOptions& study);

/// Index/label-free identity of a point's *numerical result*: two requests
/// (possibly from different clients or jobs) with equal identity hashes are
/// guaranteed the same curve, so the service's cross-request ResultStore
/// merges on this key and computes shared points exactly once.
std::uint64_t point_identity_hash(const Parameters& params,
                                  const std::vector<double>& times,
                                  const StudyOptions& study);

/// The snapshot header of point_<index>.result under this identity.
util::SnapshotHeader point_result_header(std::size_t index,
                                         const SweepPoint& point,
                                         const std::vector<double>& times,
                                         const StudyOptions& study);

/// Serializes a completed curve with exact double bit patterns, so a
/// restored point is bitwise identical to the run that computed it.
std::string encode_curve(const UnsafetyCurve& curve);
UnsafetyCurve decode_curve(const std::string& payload);

}  // namespace ahs
