// Parallel parameter-sweep engine: evaluates S(t) for a batch of parameter
// sets concurrently on a util::ThreadPool, reusing the explored state-space
// structure across points that differ only in rate values.
//
// Every figure bench is a sweep — fig 11 varies λ, fig 12 (n, λ), fig 13
// the load (join, leave), fig 14 the strategy — so this is the layer where
// wall-clock is won: the per-point CTMC solves are independent and the BFS
// exploration is shared via StudyCache whenever the points' structural
// fingerprints coincide.
//
// Determinism: each point is evaluated by thread-count-independent code
// (the solver's optional internal parallelism is bitwise stable, and the
// sweep never hands its own pool down into a point), and results land in
// slots indexed by input order — so the output is point-for-point identical
// to a sequential loop, for any thread count.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "ahs/parameters.h"
#include "ahs/study.h"

namespace util {
class ThreadPool;
}

namespace ahs {

/// One sweep point: a full parameter set plus a label for logs/CSV.
struct SweepPoint {
  std::string label;
  Parameters params;
};

/// One grid axis: a parameter name (for labels), its values, and a setter
/// applying a value to a Parameters.
struct GridAxis {
  std::string name;
  std::vector<double> values;
  std::function<void(Parameters&, double)> set;
};

/// 1-D grid: `base` with axis.set applied for each value.  Labels are
/// "name=value".
std::vector<SweepPoint> make_grid(const Parameters& base,
                                  const GridAxis& axis);

/// 2-D grid in row-major order (outer varies slowest).  Labels are
/// "outer=v1,inner=v2".
std::vector<SweepPoint> make_grid(const Parameters& base,
                                  const GridAxis& outer,
                                  const GridAxis& inner);

struct SweepOptions {
  /// Engine + engine knobs for every point.  `study.pool` must stay null —
  /// the sweep parallelizes across points, not inside them (see
  /// StudyOptions::pool on why both at once would deadlock).
  StudyOptions study;

  /// Worker threads: 0 = hardware concurrency, 1 = sequential in the
  /// calling thread (no pool is created).
  unsigned threads = 0;

  /// Share explored state-space structure across same-fingerprint points
  /// (CTMC engines).  Off forces a cold BFS per point.
  bool reuse_structure = true;
};

struct SweepResult {
  /// curves[i] is the result for points[i] — same order, any thread count.
  std::vector<UnsafetyCurve> curves;
  /// Whether point i reused a cached structure (false for the first point
  /// of each fingerprint group and for simulation engines).
  std::vector<bool> structure_cache_hit;
  /// Wall-clock seconds spent evaluating point i.
  std::vector<double> point_seconds;
  /// Wall-clock seconds for the whole sweep (includes scheduling).
  double total_seconds = 0.0;
};

/// Evaluates S(t) at `times` for every point.  Cold structure builds (one
/// per distinct fingerprint) run first, concurrently; the remaining points
/// then run concurrently with guaranteed cache hits.
SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const std::vector<double>& times,
                      const SweepOptions& options = {});

}  // namespace ahs
