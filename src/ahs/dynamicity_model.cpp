#include "ahs/dynamicity_model.h"

#include <algorithm>
#include <string>

#include "ahs/model_common.h"

namespace ahs {

std::shared_ptr<san::AtomicModel> build_dynamicity_model(
    const Parameters& params) {
  params.validate();
  auto model = std::make_shared<san::AtomicModel>("dynamicity");
  const int n = params.max_per_platoon;
  const int lanes = params.num_platoons;
  const int cap = params.capacity();

  const san::PlaceToken in = model->place("IN");
  const san::PlaceToken out = model->place("OUT");
  const san::PlaceToken placing = model->place("placing");
  const san::PlaceToken leaving_direct = model->place("leaving_direct");
  const san::PlaceToken leaving_transit = model->place("leaving_transit");
  const san::PlaceToken platoons = model->extended_place("platoons", cap);
  const san::PlaceToken active_m = model->extended_place("active_m", cap);

  // Checked declarations — values must agree with the other submodels that
  // share these places (see vehicle_model.cpp for the policy).
  model->capacity(in, cap)
      .capacity(out, cap)
      .capacity(placing, cap)
      .capacity(leaving_direct, cap)
      .capacity(leaving_transit, cap)
      .capacity(platoons, cap)
      .capacity(active_m, static_cast<std::int32_t>(kNumManeuvers));

  auto lane_ref = [platoons, n](int l) { return LaneRef{platoons, l, n}; };

  // --- JP: place a claimed vehicle into a platoon (Fig 7's instantaneous
  // activity; for the paper's two lanes the 50/50 split, generally uniform
  // over lanes with room — a full lane forces the others).
  {
    auto jp = model->instant_activity("JP")
                  .priority(5)
                  .reads({placing})
                  .writes({platoons, placing})
                  .input_gate([placing](const san::MarkingRef& m) {
                    return m.get(placing) > 0;
                  });
    for (int l = 0; l < lanes; ++l) {
      jp.add_case([lane_ref, l, n](const san::MarkingRef& m) {
        return lane_size(m, lane_ref(l)) < n ? 1.0 : 0.0;
      });
      jp.output_gate(
          [placing, lane_ref, l](const san::MarkingRef& m) {
            lane_append(m, lane_ref(l), m.get(placing));
            m.set(placing, 0);
          },
          static_cast<std::size_t>(l));
    }
  }

  // --- Join: a new vehicle arrives while a slot is free; infinite-server
  // semantics (rate proportional to the OUT marking — see
  // Parameters::join_rate).
  const double join_rate = params.join_rate > 0 ? params.join_rate : 1e-12;
  model->timed_activity("Join")
      .marking_rate([out, join_rate](const san::MarkingRef& m) {
        return join_rate * std::max(1, m.get(out));
      })
      .reads({out})
      .writes({out})
      .input_gate(
          [out](const san::MarkingRef& m) { return m.get(out) > 0; },
          [out](const san::MarkingRef& m) { m.add(out, -1); })
      .output_arc(in);

  // --- leave_l: a healthy vehicle voluntarily leaves lane l.  Lane 0 is
  // adjacent to the exit (no transit); other lanes transit first (§4.1).
  const double leave_rate =
      params.leave_rate > 0 ? params.leave_rate : 1e-12;
  for (int l = 0; l < lanes; ++l) {
    const san::PlaceToken handoff = l == 0 ? leaving_direct : leaving_transit;
    model->timed_activity("leave" + std::to_string(l + 1))
        .distribution(util::Distribution::Exponential(leave_rate))
        .reads({handoff, platoons, active_m})
        .writes({platoons, handoff})
        .input_gate(
            [lane_ref, l, active_m, handoff](const san::MarkingRef& m) {
              return m.get(handoff) == 0 &&
                     lane_rearmost_healthy(m, lane_ref(l), active_m) >= 0;
            },
            [lane_ref, l, active_m, handoff](const san::MarkingRef& m) {
              const LaneRef lane = lane_ref(l);
              const int pos = lane_rearmost_healthy(m, lane, active_m);
              const int vid = lane.get(m, pos);
              lane_remove(m, lane, vid);
              m.set(handoff, vid);
            });
  }

  // --- ch_{l}_{m}: a healthy vehicle switches to an adjacent lane (rate
  // 6/h per direction, §4.1); the mover joins the target platoon's tail.
  const double change_rate =
      params.change_rate > 0 ? params.change_rate : 1e-12;
  for (int l = 0; l < lanes; ++l) {
    for (int delta : {-1, 1}) {
      const int target = l + delta;
      if (target < 0 || target >= lanes) continue;
      model
          ->timed_activity("ch" + std::to_string(l + 1) + "_" +
                           std::to_string(target + 1))
          .distribution(util::Distribution::Exponential(change_rate))
          .reads({platoons, active_m})
          .writes({platoons})
          .input_gate(
              [lane_ref, l, target, n, active_m](const san::MarkingRef& m) {
                return lane_size(m, lane_ref(target)) < n &&
                       lane_rearmost_healthy(m, lane_ref(l), active_m) >= 0;
              },
              [lane_ref, l, target, active_m](const san::MarkingRef& m) {
                const LaneRef from = lane_ref(l);
                const int pos = lane_rearmost_healthy(m, from, active_m);
                const int vid = from.get(m, pos);
                lane_remove(m, from, vid);
                lane_append(m, lane_ref(target), vid);
              });
    }
  }

  return model;
}

}  // namespace ahs
