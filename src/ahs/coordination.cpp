#include "ahs/coordination.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "util/error.h"
#include "util/string_util.h"

namespace ahs {

const char* to_string(Strategy s) {
  switch (s) {
    case Strategy::kDD: return "DD";
    case Strategy::kDC: return "DC";
    case Strategy::kCD: return "CD";
    case Strategy::kCC: return "CC";
  }
  return "?";
}

Strategy parse_strategy(const std::string& s) {
  const std::string u = util::to_lower(s);
  if (u == "dd") return Strategy::kDD;
  if (u == "dc") return Strategy::kDC;
  if (u == "cd") return Strategy::kCD;
  if (u == "cc") return Strategy::kCC;
  throw util::PreconditionError("unknown strategy '" + s +
                                "' (expected DD, DC, CD, or CC)");
}

AssistantSet CoordinationPolicy::assistants(Maneuver m, int pos,
                                            int platoon_size) const {
  AHS_REQUIRE(platoon_size >= 1, "platoon size must be >= 1");
  AHS_REQUIRE(pos >= 0 && pos < platoon_size, "position out of range");

  std::set<int> positions;
  bool neighbor = false;

  auto add = [&](int p) {
    if (p >= 0 && p < platoon_size && p != pos) positions.insert(p);
  };

  switch (m) {
    case Maneuver::kTakeImmediateExitNormal:
      // Exits without assistance (severity C).
      break;
    case Maneuver::kTakeImmediateExit:
      // Split maneuver: the vehicles physically around the splitter.
      add(pos - 1);
      add(pos + 1);
      break;
    case Maneuver::kTakeImmediateExitEscorted:
      // §2.2.1: the only maneuver whose participant set depends on the
      // inter-platoon model.
      neighbor = true;
      if (inter_centralized()) {
        for (int p = 0; p < pos; ++p) add(p);  // every vehicle ahead
        add(pos + 1);                          // vehicle just behind
      } else {
        add(0);        // own platoon's leader
        add(pos - 1);  // vehicle just in front
        add(pos + 1);  // vehicle just behind
      }
      break;
    case Maneuver::kGentleStop:
    case Maneuver::kCrashStop:
      // The faulty vehicle stops by itself; downstream traffic control is
      // outside the platoon-coordination model.
      break;
    case Maneuver::kAidedStop:
      // Stopped by the vehicle immediately ahead.
      add(pos - 1);
      break;
  }

  // Centralized intra-platoon coordination routes every maneuver through
  // the leader (§2.2.2), adding it to the participant set.
  if (intra_centralized()) add(0);

  AssistantSet out;
  out.own_platoon_positions.assign(positions.begin(), positions.end());
  out.neighbor_leader = neighbor;
  return out;
}

double CoordinationPolicy::assistant_count(Maneuver m,
                                           double platoon_size) const {
  const int size = std::max(1, static_cast<int>(std::lround(platoon_size)));
  double total = 0.0;
  for (int pos = 0; pos < size; ++pos) {
    const AssistantSet set = assistants(m, pos, size);
    total += static_cast<double>(set.own_platoon_positions.size()) +
             (set.neighbor_leader ? 1.0 : 0.0);
  }
  return total / static_cast<double>(size);
}

}  // namespace ahs
