// Shared-place vocabulary and helpers used by all four SAN submodels.
//
// The submodels communicate exclusively through shared places, as in the
// paper's Möbius model (Fig 9).  Naming and roles:
//
//   IN, OUT          join pipeline: OUT counts free vehicle slots; the
//                    timed Join activity (Dynamicity) converts OUT into IN
//                    at the join rate; Configuration's id_trigger converts
//                    IN (or an initial budget) into a `joining` flag.
//   ext_id           cumulative vehicle-id counter (statistics; the
//                    paper's ID-assignment mechanism).
//   joining          flag: one vehicle should claim a slot.
//   placing          vehicle id awaiting platoon placement by JP.
//   leaving_direct   vehicle id designated to leave from lane 0 (the
//                    paper's platoon1: adjacent to the exit, no transit).
//   leaving_transit  vehicle id designated to leave from a lane >= 1 (the
//                    paper's platoon2: transits 3-4 min first, §4.1).
//   platoons         extended place of size L·n (lane-major): slot
//                    l·n + p holds the id of the vehicle at position p of
//                    platoon l (0 = leader), 0 = empty, compacted per
//                    lane.  For the paper's configuration L = 2 this is
//                    exactly Fig 7's platoon1/platoon2 pair.
//   active_m         extended place of length L·n; active_m[id-1] =
//                    maneuver stage + 1 of vehicle `id` (0 = healthy) —
//                    how a gate inspects the state of *adjacent* vehicles.
//   class_A/B/C      counts of ongoing maneuvers by severity class (the
//                    paper's Severity extended places).
//   KO_total         absorbing unsafe flag (the S(t) measure).
//   safe_exits       cumulative vehicles that left safely (v_OK).
//   ko_exits         cumulative free-agent ejections after a failed AS
//                    (v_KO).
#pragma once

#include <memory>
#include <set>
#include <string>

#include "ahs/parameters.h"
#include "san/atomic_model.h"

namespace ahs {

/// Names of every cross-submodel shared place.
const std::set<std::string>& shared_place_names();

/// View of one lane inside the lane-major `platoons` extended place.
struct LaneRef {
  san::PlaceToken platoons;
  int lane;      ///< lane index in [0, num_platoons)
  int capacity;  ///< n = max vehicles per platoon

  std::uint32_t slot(int pos) const {
    return static_cast<std::uint32_t>(lane * capacity + pos);
  }
  int get(const san::MarkingRef& m, int pos) const {
    return m.get(platoons, slot(pos));
  }
  void set(const san::MarkingRef& m, int pos, int id) const {
    m.set(platoons, slot(pos), id);
  }
};

/// Position of `id` in the lane, or -1.
int lane_find(const san::MarkingRef& m, const LaneRef& lane, int id);

/// Number of occupied (leading) slots of the lane.
int lane_size(const san::MarkingRef& m, const LaneRef& lane);

/// Appends `id` to the first free slot; throws util::ModelError when full.
void lane_append(const san::MarkingRef& m, const LaneRef& lane, int id);

/// Removes `id` and compacts the lane; no-op when absent.
void lane_remove(const san::MarkingRef& m, const LaneRef& lane, int id);

/// Rearmost occupied position whose vehicle is healthy according to
/// `active_m` (slot id-1 == 0), or -1 when none.
int lane_rearmost_healthy(const san::MarkingRef& m, const LaneRef& lane,
                          san::PlaceToken active_m);

/// Lane index holding vehicle `id`, or -1 (free agent / transiting).
int find_vehicle_lane(const san::MarkingRef& m, san::PlaceToken platoons,
                      int num_platoons, int capacity, int id);

/// The neighbouring lane whose platoon can escort a TIE-E from `lane`:
/// the nearest adjacent lane with a non-empty platoon (left preferred),
/// or -1 when no neighbour exists.
int escort_lane(const san::MarkingRef& m, san::PlaceToken platoons,
                int num_platoons, int capacity, int lane);

}  // namespace ahs
