// The One_vehicle SAN submodel (Fig 5), replicated 2n times.
//
// Behaviour per replica:
//   * claim        — on the shared `joining` flag, an idle replica adopts
//                    identity replica+1, arms its six failure modes
//                    (places CC1..CC6) and requests platoon placement.
//   * L1..L6       — timed failure-mode occurrences (rates λ_i).  A firing
//                    activates the associated maneuver unless a
//                    higher-priority maneuver is already running; a running
//                    lower-priority maneuver is preempted (§2.1.1/§2.1.2).
//   * M1..M6       — timed maneuver executions (rates μ), one per
//                    escalation stage, with success/failure cases.  Success
//                    requires every assistant demanded by the coordination
//                    strategy to be healthy (checked against the shared
//                    `active_m` place) plus an intrinsic Bernoulli
//                    q_intrinsic; failure escalates along Fig 2's chain;
//                    a failed Aided Stop ejects the vehicle as a free agent
//                    (v_KO).
//   * voluntary_exit / start_transit / exit_transit — the Dynamicity
//                    submodel designates leavers through the shared
//                    leaving1/leaving2 places; platoon-2 leavers transit
//                    (3–4 min) before freeing their slot (§4.1).
#pragma once

#include <memory>

#include "ahs/parameters.h"
#include "san/atomic_model.h"

namespace ahs {

/// Builds the One_vehicle atomic model for the given parameters.
std::shared_ptr<san::AtomicModel> build_vehicle_model(
    const Parameters& params);

}  // namespace ahs
