// Exchangeability-lumped CTMC of the multi-platoon AHS.
//
// The full SAN model (system_model.h) replicates one submodel per vehicle;
// since the replicas are identical and every gate is symmetric under
// vehicle permutation, the process lumps onto counts:
//
//   state = (lanes[0..L-1], nt, m[0..5])
//     lanes[l] : vehicles in platoon l                     (0..n each)
//     nt       : vehicles in exit transit (lanes >= 1 leave through the
//                exit lane, §4.1)                          (0..max_transit)
//     m[k]     : vehicles currently executing maneuver stage k
//                (stage order TIE-N, TIE, TIE-E, GS, CS, AS)
//
// plus one absorbing UNSAFE state entered the instant the severity profile
// (#class-A, #class-B, #class-C of ongoing maneuvers) satisfies Table 2.
// S(t) is the transient probability of UNSAFE, solved by uniformization.
//
// Approximations relative to the full SAN (all second-order; quantified by
// the cross-validation bench):
//   * a maneuvering vehicle's platoon is not tracked — departures and
//     assistant availability use proportional/average occupancy;
//   * simultaneous multiple failure modes in one vehicle are not merged
//     (probability O(λ²) per vehicle);
//   * voluntary leaves/changes pick any vehicle while some platoon vehicle
//     is healthy, rather than a healthy one specifically.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ahs/parameters.h"
#include "ahs/severity.h"
#include "ctmc/chain.h"

namespace ahs {

/// The lumped state, exposed for tests and diagnostics.
struct LumpedState {
  std::array<int, Parameters::kMaxPlatoons> lanes{};
  int nt = 0;
  std::array<int, kNumManeuvers> maneuvers{};  ///< by escalation stage

  int platoon_vehicles() const {
    int v = 0;
    for (int x : lanes) v += x;
    return v;
  }
  int vehicles() const { return platoon_vehicles() + nt; }
  int maneuvering() const {
    int m = 0;
    for (int x : maneuvers) m += x;
    return m;
  }
  int healthy() const { return vehicles() - maneuvering(); }
  SeverityCounts severity() const;

  friend bool operator==(const LumpedState&, const LumpedState&) = default;
};

class LumpedModel {
 public:
  explicit LumpedModel(Parameters params);

  const Parameters& parameters() const { return params_; }

  /// The number of states including the absorbing UNSAFE state.
  std::size_t num_states() const;

  /// Index of the absorbing UNSAFE state.
  std::uint32_t unsafe_state() const;

  /// The underlying chain (built lazily on first use).
  const ctmc::MarkovChain& chain() const;

  /// The lumped state for index `s` (s != unsafe_state()).
  const LumpedState& state(std::uint32_t s) const;

  /// S(t) — probability the AHS has reached a catastrophic situation by
  /// each time point (hours, strictly increasing).
  std::vector<double> unsafety(std::span<const double> times) const;
  std::vector<double> unsafety(std::initializer_list<double> times) const {
    return unsafety(std::span<const double>(times.begin(), times.size()));
  }

  /// Mean time to the first catastrophic situation (hours) — the system
  /// MTTF, reported by the extension benches.
  double mean_time_to_unsafe() const;

  /// Expected number of vehicles on the highway at each time point
  /// (validation measure for the Dynamicity submodel).
  std::vector<double> expected_vehicles(std::span<const double> times) const;

  /// E[∫₀ᵗ (#ongoing maneuvers) du] — expected cumulative vehicle-hours
  /// spent executing recovery maneuvers by time t (interval-of-time reward;
  /// an operational-cost companion to S(t)).
  double expected_maneuver_hours(double t) const;

 private:
  void build() const;

  Parameters params_;
  mutable bool built_ = false;
  mutable ctmc::MarkovChain chain_;
  mutable std::vector<LumpedState> states_;
  mutable std::uint32_t unsafe_ = 0;
};

}  // namespace ahs
