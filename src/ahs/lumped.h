// Exchangeability-lumped CTMC of the multi-platoon AHS.
//
// The full SAN model (system_model.h) replicates one submodel per vehicle;
// since the replicas are identical and every gate is symmetric under
// vehicle permutation, the process lumps onto counts:
//
//   state = (lanes[0..L-1], nt, m[0..5])
//     lanes[l] : vehicles in platoon l                     (0..n each)
//     nt       : vehicles in exit transit (lanes >= 1 leave through the
//                exit lane, §4.1)                          (0..max_transit)
//     m[k]     : vehicles currently executing maneuver stage k
//                (stage order TIE-N, TIE, TIE-E, GS, CS, AS)
//
// plus one absorbing UNSAFE state entered the instant the severity profile
// (#class-A, #class-B, #class-C of ongoing maneuvers) satisfies Table 2.
// S(t) is the transient probability of UNSAFE, solved by uniformization.
//
// Approximations relative to the full SAN (all second-order; quantified by
// the cross-validation bench):
//   * a maneuvering vehicle's platoon is not tracked — departures and
//     assistant availability use proportional/average occupancy;
//   * simultaneous multiple failure modes in one vehicle are not merged
//     (probability O(λ²) per vehicle);
//   * voluntary leaves/changes pick any vehicle while some platoon vehicle
//     is healthy, rather than a healthy one specifically.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "ahs/parameters.h"
#include "ahs/severity.h"
#include "ctmc/chain.h"
#include "ctmc/uniformization.h"

namespace util {
class ThreadPool;
}

namespace ahs {

/// The lumped state, exposed for tests and diagnostics.
struct LumpedState {
  std::array<int, Parameters::kMaxPlatoons> lanes{};
  int nt = 0;
  std::array<int, kNumManeuvers> maneuvers{};  ///< by escalation stage

  int platoon_vehicles() const {
    int v = 0;
    for (int x : lanes) v += x;
    return v;
  }
  int vehicles() const { return platoon_vehicles() + nt; }
  int maneuvering() const {
    int m = 0;
    for (int x : maneuvers) m += x;
    return m;
  }
  int healthy() const { return vehicles() - maneuvering(); }
  SeverityCounts severity() const;

  friend bool operator==(const LumpedState&, const LumpedState&) = default;
};

/// Parameter-independent skeleton of the lumped CTMC: the reachable states,
/// the absorbing UNSAFE index, and every transition decomposed into
/// (state-derived coefficient × rate-parameter factor) terms.  Rebuilding
/// the numeric generator for another parameter set with the same
/// Parameters::structural_fingerprint is one O(#terms) pass — no BFS
/// re-exploration, no hashing.  Immutable once explored; safe to share
/// across threads.
struct LumpedStructure {
  /// Which rate parameter a term multiplies.
  enum class Factor : std::uint8_t {
    kFailureRate,    ///< params.failure_rate(FailureMode(index))
    kManeuverRate,   ///< params.maneuver_rates[index]
    kManeuverRateQ,  ///< params.maneuver_rates[index] · q_intrinsic
    kLeaveRate,
    kTransitRate,
    kChangeRate,
    kJoinRate,
  };

  /// One additive term of a transition rate.  A maneuver-failure edge
  /// carries two terms (count·μ − count·avail·μ·q); everything else one.
  struct Term {
    std::uint32_t from;
    std::uint32_t to;
    Factor factor;
    std::uint8_t index;  ///< failure mode / maneuver stage; 0 otherwise
    double coeff;        ///< state-derived multiplicity (counts, shares)
  };

  std::uint64_t fingerprint = 0;  ///< Parameters::structural_fingerprint()
  std::vector<LumpedState> states;
  std::uint32_t initial_state = 0;
  std::uint32_t unsafe = 0;  ///< == states.size(); appended absorbing state
  std::vector<Term> terms;

  /// Numeric value of a factor under `params`.
  static double factor_value(Factor f, std::uint8_t index,
                             const Parameters& params);
};

/// Explores the reachable lumped graph for `params` once.  The result is
/// valid for every parameter set with the same structural fingerprint.
std::shared_ptr<const LumpedStructure> explore_lumped_structure(
    const Parameters& params);

class LumpedModel {
 public:
  explicit LumpedModel(Parameters params);

  /// Reuses a previously explored structure, skipping BFS exploration; the
  /// structure's fingerprint must match params.structural_fingerprint()
  /// (throws util::PreconditionError otherwise).  The numeric generator is
  /// rebuilt from the structure's rate terms, so the resulting chain is
  /// identical to a cold build for the same params.
  LumpedModel(Parameters params,
              std::shared_ptr<const LumpedStructure> structure);

  const Parameters& parameters() const { return params_; }

  /// The structure backing this model (explored on first use if the model
  /// was constructed without one).  Share it across same-fingerprint models
  /// to skip their exploration.
  std::shared_ptr<const LumpedStructure> structure() const;

  /// The number of states including the absorbing UNSAFE state.
  std::size_t num_states() const;

  /// Index of the absorbing UNSAFE state.
  std::uint32_t unsafe_state() const;

  /// The underlying chain (built lazily on first use).
  const ctmc::MarkovChain& chain() const;

  /// The lumped state for index `s` (s != unsafe_state()).
  const LumpedState& state(std::uint32_t s) const;

  /// S(t) — probability the AHS has reached a catastrophic situation by
  /// each time point (hours, strictly increasing).  An optional pool
  /// parallelizes the uniformization products (bitwise thread-count
  /// independent; see UniformizationOptions::pool).  An optional shared
  /// Poisson-window cache warm-starts the solve from neighboring points'
  /// windows (see ctmc::PoissonCache; the sweep engine passes one per
  /// sweep).
  std::vector<double> unsafety(std::span<const double> times,
                               util::ThreadPool* pool = nullptr,
                               ctmc::PoissonCache* poisson_cache =
                                   nullptr) const;
  std::vector<double> unsafety(std::initializer_list<double> times) const {
    return unsafety(std::span<const double>(times.begin(), times.size()));
  }
  /// Full-control overload: solves with `base` (solver engine, caches,
  /// warm-start wiring — everything except epsilon, which stays pinned at
  /// this model's 1e-14 so the 1e-13-scale unsafety probabilities keep
  /// their digits).  When `iterations` is non-null the solve's
  /// matrix-vector product count is added to it (the sweep layer's
  /// iterations-per-point telemetry).
  std::vector<double> unsafety(std::span<const double> times,
                               const ctmc::UniformizationOptions& base,
                               std::uint64_t* iterations) const;

  /// Mean time to the first catastrophic situation (hours) — the system
  /// MTTF, reported by the extension benches.
  double mean_time_to_unsafe() const;

  /// Expected number of vehicles on the highway at each time point
  /// (validation measure for the Dynamicity submodel).
  std::vector<double> expected_vehicles(std::span<const double> times) const;

  /// E[∫₀ᵗ (#ongoing maneuvers) du] — expected cumulative vehicle-hours
  /// spent executing recovery maneuvers by time t (interval-of-time reward;
  /// an operational-cost companion to S(t)).
  double expected_maneuver_hours(double t) const;

 private:
  void build() const;

  Parameters params_;
  mutable bool built_ = false;
  mutable std::shared_ptr<const LumpedStructure> structure_;
  mutable ctmc::MarkovChain chain_;
};

}  // namespace ahs
