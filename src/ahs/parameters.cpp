#include "ahs/parameters.h"

#include <sstream>

#include "util/error.h"
#include "util/string_util.h"

namespace ahs {

const char* to_string(ManeuverTimeModel m) {
  switch (m) {
    case ManeuverTimeModel::kExponential: return "exponential";
    case ManeuverTimeModel::kDeterministic: return "deterministic";
    case ManeuverTimeModel::kUniform: return "uniform";
    case ManeuverTimeModel::kErlang3: return "erlang3";
  }
  return "?";
}

util::Distribution Parameters::maneuver_distribution(Maneuver m) const {
  const double mu = maneuver_rate(m);
  switch (maneuver_time_model) {
    case ManeuverTimeModel::kExponential:
      return util::Distribution::Exponential(mu);
    case ManeuverTimeModel::kDeterministic:
      return util::Distribution::Deterministic(1.0 / mu);
    case ManeuverTimeModel::kUniform:
      return util::Distribution::Uniform(0.5 / mu, 1.5 / mu);
    case ManeuverTimeModel::kErlang3:
      return util::Distribution::Erlang(3, 3.0 * mu);
  }
  throw util::InvariantError("unknown maneuver time model");
}

std::uint64_t Parameters::structural_fingerprint() const {
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t x) {
    h ^= x;
    h *= 1099511628211ull;
  };
  mix(static_cast<std::uint64_t>(max_per_platoon));
  mix(static_cast<std::uint64_t>(num_platoons));
  mix(static_cast<std::uint64_t>(max_transit));
  mix(static_cast<std::uint64_t>(strategy));
  mix(static_cast<std::uint64_t>(maneuver_time_model));
  mix(static_cast<std::uint64_t>(adjacency_radius));
  std::uint64_t enabled_bits = 0;
  for (std::size_t i = 0; i < kNumFailureModes; ++i)
    if (failure_mode_enabled[i]) enabled_bits |= 1ull << i;
  mix(enabled_bits);
  mix(join_rate == 0.0 ? 1 : 0);
  mix(leave_rate == 0.0 ? 1 : 0);
  mix(change_rate == 0.0 ? 1 : 0);
  mix(q_intrinsic == 1.0 ? 1 : 0);
  return h;
}

void Parameters::validate() const {
  AHS_REQUIRE(max_per_platoon >= 1, "max_per_platoon must be >= 1");
  AHS_REQUIRE(num_platoons >= 1 && num_platoons <= kMaxPlatoons,
              "num_platoons must be in [1, " +
                  std::to_string(kMaxPlatoons) + "]");
  AHS_REQUIRE(base_failure_rate > 0.0, "base failure rate must be > 0");
  for (double m : rate_multipliers)
    AHS_REQUIRE(m > 0.0, "rate multipliers must be > 0");
  for (double mu : maneuver_rates)
    AHS_REQUIRE(mu > 0.0, "maneuver rates must be > 0");
  AHS_REQUIRE(join_rate >= 0.0, "join rate must be >= 0");
  AHS_REQUIRE(leave_rate >= 0.0, "leave rate must be >= 0");
  AHS_REQUIRE(change_rate >= 0.0, "change rate must be >= 0");
  AHS_REQUIRE(transit_rate > 0.0, "transit rate must be > 0");
  AHS_REQUIRE(q_intrinsic > 0.0 && q_intrinsic <= 1.0,
              "q_intrinsic must be in (0, 1]");
  AHS_REQUIRE(max_transit >= 0, "max_transit must be >= 0");
  bool any_mode = false;
  for (bool e : failure_mode_enabled) any_mode |= e;
  AHS_REQUIRE(any_mode, "at least one failure mode must be enabled");
  AHS_REQUIRE(adjacency_radius >= 0, "adjacency_radius must be >= 0");
}

std::string Parameters::describe() const {
  std::ostringstream os;
  os << "n (max vehicles/platoon) = " << max_per_platoon << ", platoons = "
     << num_platoons << '\n'
     << "lambda (base failure rate) = "
     << util::format_sci(base_failure_rate) << "/h\n"
     << "failure rates:";
  for (FailureMode fm : kAllFailureModes)
    os << ' ' << to_string(fm) << '=' << util::format_sci(failure_rate(fm));
  os << "\nmaneuver rates (/h):";
  for (Maneuver m : kAllManeuvers)
    os << ' ' << short_name(m) << '=' << util::format_fixed(maneuver_rate(m));
  os << "\njoin = " << util::format_fixed(join_rate)
     << "/h per free slot, leave = " << util::format_fixed(leave_rate)
     << "/h per platoon, change = " << util::format_fixed(change_rate)
     << "/h, transit = " << util::format_fixed(transit_rate, 2) << "/h\n"
     << "q_intrinsic = " << util::format_fixed(q_intrinsic) << ", strategy = "
     << to_string(strategy) << ", maneuver times "
     << to_string(maneuver_time_model);
  if (adjacency_radius > 0)
    os << ", severity scope +-" << adjacency_radius << " positions";
  os << '\n';
  return os.str();
}

}  // namespace ahs
