// The catastrophic-situation predicate of Table 2.
//
// The AHS reaches an unsafe state when the severity classes of the failures
// concurrently affecting vehicles in the two-platoon neighbourhood match:
//   ST1: at least two class-A failures;
//   ST2: at least one class-A failure AND (two class-B, or one class-B and
//        one class-C, or three class-C failures);
//   ST3: at least four failures of class B or C.
#pragma once

#include <array>
#include <vector>

namespace ahs {

/// Counts of *ongoing* maneuvers by severity class.
struct SeverityCounts {
  int a = 0;
  int b = 0;
  int c = 0;

  friend bool operator==(const SeverityCounts&, const SeverityCounts&) =
      default;
};

/// Which catastrophic situation (1–3) the counts satisfy; 0 if none.
/// When several match, the lowest-numbered (most specific) is reported.
int catastrophic_situation(const SeverityCounts& s);

/// True iff the counts satisfy any of ST1–ST3.
bool is_catastrophic(const SeverityCounts& s);

/// All (a, b, c) profiles with each count <= max_count that are NOT
/// catastrophic.  Used to bound the lumped model's state space and by the
/// exhaustive property tests.
std::vector<SeverityCounts> safe_profiles(int max_count = 8);

}  // namespace ahs
