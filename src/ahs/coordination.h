// Coordination strategies (Table 3) and their assistant-set model (§2.2).
//
// A recovery maneuver involves a set of *assisting* vehicles; the maneuver
// can only succeed when every required assistant is itself healthy.  The
// paper's comparison of strategies rests on how many vehicles each strategy
// involves:
//   * inter-platoon Centralized (TIE-E, §2.2.1): every vehicle ahead of the
//     faulty one (incl. the leader), the vehicle just behind, and the leader
//     of the neighbouring platoon;
//   * inter-platoon Decentralized: only the two leaders plus the vehicles
//     just in front of and behind the faulty vehicle;
//   * intra-platoon Centralized (§2.2.2): the leader additionally
//     coordinates every intra-platoon maneuver;
//   * intra-platoon Decentralized: members react independently, so only the
//     physically involved neighbours participate.
//
// Two interfaces are provided:
//   * `assistant_count` — expected set size given a platoon size (used by
//     the exchangeability-lumped CTMC);
//   * `assistants` — the concrete position set for a vehicle at a given
//     position (used by the full SAN model's gate predicates).
#pragma once

#include <string>
#include <vector>

#include "ahs/types.h"

namespace ahs {

/// The four strategies of Table 3 (inter-platoon model × intra-platoon
/// model; D = decentralized, C = centralized).
enum class Strategy { kDD = 0, kDC, kCD, kCC };

inline constexpr std::array<Strategy, 4> kAllStrategies = {
    Strategy::kDD, Strategy::kDC, Strategy::kCD, Strategy::kCC};

const char* to_string(Strategy s);
/// Parses "DD" / "DC" / "CD" / "CC" (case-insensitive); throws otherwise.
Strategy parse_strategy(const std::string& s);

/// Which vehicles, relative to the faulty one, a maneuver requires.
struct AssistantSet {
  /// Positions within the faulty vehicle's platoon (0 = leader), excluding
  /// the faulty vehicle itself.  Positions outside the platoon are dropped
  /// by the caller.
  std::vector<int> own_platoon_positions;
  /// True when the neighbouring platoon's leader must also assist.
  bool neighbor_leader = false;
};

class CoordinationPolicy {
 public:
  explicit CoordinationPolicy(Strategy strategy) : strategy_(strategy) {}

  Strategy strategy() const { return strategy_; }
  bool inter_centralized() const {
    return strategy_ == Strategy::kCD || strategy_ == Strategy::kCC;
  }
  bool intra_centralized() const {
    return strategy_ == Strategy::kDC || strategy_ == Strategy::kCC;
  }

  /// Concrete assistant set for a faulty vehicle at position `pos`
  /// (0-based; 0 = leader) in a platoon of `platoon_size` vehicles.
  AssistantSet assistants(Maneuver m, int pos, int platoon_size) const;

  /// Expected number of assistants for a maneuver in a platoon of the given
  /// (possibly fractional, averaged) size — the lumped model's view.
  double assistant_count(Maneuver m, double platoon_size) const;

 private:
  Strategy strategy_;
};

}  // namespace ahs
