// All model parameters, with the defaults of §4.1.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "ahs/coordination.h"
#include "util/distributions.h"
#include "ahs/types.h"

namespace ahs {

/// Law of the maneuver execution times.  The paper assumes exponential
/// stages (§4.1) so its model is a CTMC; the discrete-event engine also
/// supports the physically more plausible alternatives below (same means),
/// letting the exponential assumption itself be sensitivity-tested
/// (`bench_distributions`).
enum class ManeuverTimeModel {
  kExponential,   ///< the paper's assumption (all engines)
  kDeterministic, ///< fixed duration 1/μ (simulation engines only)
  kUniform,       ///< Uniform[0.5/μ, 1.5/μ] (simulation engines only)
  kErlang3,       ///< 3-stage Erlang, mean 1/μ (simulation engines only)
};

const char* to_string(ManeuverTimeModel m);

/// Parameter set for one AHS study.  Rates are per hour; times in hours.
struct Parameters {
  /// Maximum number of vehicles per platoon (n).  The system holds up to
  /// num_platoons · n vehicles.
  int max_per_platoon = 10;

  /// Number of platoons/lanes (the paper studies 2; its conclusion names
  /// "highways composed of a larger number of platoons" as the natural
  /// extension, which this implementation supports up to kMaxPlatoons).
  /// Lane 0 is adjacent to the exit: lane-0 leavers exit directly, leavers
  /// from other lanes first transit (§4.1's platoon-2 behaviour).
  int num_platoons = 2;

  static constexpr int kMaxPlatoons = 4;

  /// Base failure rate λ (/h).  Per-mode rates are λ · multiplier with the
  /// §4.1 multipliers (λ1=λ, λ2=λ3=λ4=2λ, λ5=3λ, λ6=4λ).
  double base_failure_rate = 1e-5;
  std::array<double, kNumFailureModes> rate_multipliers = {1, 2, 2, 2, 3, 4};

  /// Per-mode enable switches.  All six modes are active by default (the
  /// paper's model); validation studies disable modes to keep the exact
  /// full-model CTMC tractable.
  std::array<bool, kNumFailureModes> failure_mode_enabled = {true, true, true,
                                                             true, true, true};

  /// Maneuver execution rates (/h), indexed by Maneuver enumeration order
  /// {TIE-N, TIE, TIE-E, GS, CS, AS}.  §4.1 bounds them to [15, 30]/h
  /// (durations of 2–4 minutes); the defaults reflect relative complexity.
  std::array<double, kNumManeuvers> maneuver_rates = {30, 25, 20, 25, 30, 15};

  /// Distribution family of the maneuver execution times (means stay
  /// 1/maneuver_rate).  Non-exponential choices are only valid with the
  /// simulation engines.
  ManeuverTimeModel maneuver_time_model = ManeuverTimeModel::kExponential;

  /// Vehicle arrival rate per *free slot* (/h).  The paper's Join activity
  /// is enabled by the OUT place; with Möbius' infinite-server idiom the
  /// effective arrival rate is join_rate × (free slots), which is the only
  /// reading consistent with Fig 13 (same-load curves trend together and a
  /// higher load ρ = join/leave sits fuller).  At the §4.1 defaults the
  /// system hovers near-full: expected free slots ≈ 2·leave/join ≈ 0.67.
  double join_rate = 12.0;
  /// Vehicles voluntarily leaving each platoon (/h per platoon).
  double leave_rate = 4.0;
  /// Vehicles switching platoons (/h per direction; §4.1 uses 6/h).
  double change_rate = 6.0;

  /// A platoon-2 vehicle leaving the highway transits through platoon 1's
  /// lane for 3–4 minutes (§4.1); modeled as an exponential stage with this
  /// rate (default 1 / 3.5 min ≈ 17.14/h).
  double transit_rate = 60.0 / 3.5;

  /// Intrinsic maneuver success probability, conditioned on every required
  /// assistant being healthy.  The paper does not publish this value; 0.98
  /// keeps recovery failures rare without making escalation negligible.
  double q_intrinsic = 0.98;

  /// Lumped-model truncation of the transit dimension: with the §4.1 rates
  /// the expected transit occupancy is leave_rate/transit_rate ≈ 0.23, so
  /// P(nt > 6) < 1e-5 of itself; beyond the cap a platoon-2 leaver exits
  /// directly.  Keeps the uniformization rate (and solve time) flat in n.
  int max_transit = 6;

  /// Coordination strategy (Table 3).
  Strategy strategy = Strategy::kDD;

  /// Spatial scope of the Table 2 catastrophic-situation predicate.
  /// 0 (default, the reproduction's reading of the paper): failures
  /// anywhere in the multi-platoon neighbourhood count together.
  /// r > 0: failures only combine when the faulty vehicles sit within r
  /// positions of each other (own platoon and adjacent lanes) — the
  /// stricter reading of §2.1.3's "small neighborhood in space"; transiting
  /// free agents count toward every window.  Supported by the full-SAN
  /// engines only (the count-lumped model has no positions).
  int adjacency_radius = 0;

  /// λ_i for a failure mode.
  double failure_rate(FailureMode fm) const {
    return base_failure_rate *
           rate_multipliers[static_cast<std::size_t>(fm)];
  }

  bool enabled(FailureMode fm) const {
    return failure_mode_enabled[static_cast<std::size_t>(fm)];
  }

  /// Maneuver-duration distribution with mean 1/maneuver_rate(m), per
  /// maneuver_time_model.
  util::Distribution maneuver_distribution(Maneuver m) const;

  /// μ for a maneuver.
  double maneuver_rate(Maneuver m) const {
    return maneuver_rates[static_cast<std::size_t>(m)];
  }

  /// Total vehicle capacity num_platoons · n.
  int capacity() const { return num_platoons * max_per_platoon; }

  /// Hash of every determinant of the CTMC *structure* — which states are
  /// reachable and which transitions carry nonzero rate: the integer sizes,
  /// strategy, enabled failure modes, time model, the zero-pattern of the
  /// optional rates (join/leave/change; validate() pins the rest positive),
  /// and whether q_intrinsic sits at its boundary 1 (a q = 1 build prunes
  /// escalation edges).  Parameter sets with equal fingerprints share the
  /// same reachability graph, so the structure caches key on this value.
  std::uint64_t structural_fingerprint() const;

  /// Throws util::PreconditionError on out-of-domain values.
  void validate() const;

  /// One line per parameter, for experiment logs.
  std::string describe() const;
};

}  // namespace ahs
