// The composed system model of Fig 9:
//
//   Join("ahs", { Rep("vehicles", One_vehicle, 2n, shared),
//                 Configuration, Dynamicity, Severity }, shared)
//
// flattened into an executable san::FlatModel.  All timed activities are
// exponential, so the model can be run by the discrete-event simulator
// (with or without importance sampling) and, for small n, turned into an
// exact CTMC by ctmc::build_state_space.
#pragma once

#include "ahs/parameters.h"
#include "san/composition.h"
#include "san/flat_model.h"
#include "san/rewards.h"

namespace ahs {

/// Builds the composition tree (exposed for structural tests).
san::CompositionPtr build_system_composition(const Parameters& params);

/// Builds and flattens the full system model.
san::FlatModel build_system_model(const Parameters& params);

/// The unsafety reward (indicator of KO_total) for a flattened system model.
san::RewardFn unsafety_reward(const san::FlatModel& model);

}  // namespace ahs
