// The Severity SAN submodel (Fig 6): watches the shared class_A/B/C
// counters of ongoing maneuvers and absorbs into KO_total the instant the
// Table 2 predicate (ST1–ST3) is satisfied.
#pragma once

#include <memory>

#include "ahs/parameters.h"
#include "san/atomic_model.h"

namespace ahs {

std::shared_ptr<san::AtomicModel> build_severity_model(
    const Parameters& params);

}  // namespace ahs
