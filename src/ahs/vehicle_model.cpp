#include "ahs/vehicle_model.h"

#include <string>

#include "ahs/model_common.h"
#include "ahs/severity.h"
#include "util/error.h"

namespace ahs {

namespace {

/// Everything a gate closure needs, captured once per model.
struct VehicleContext {
  Parameters params;
  CoordinationPolicy policy{Strategy::kDD};

  // Local places.
  san::PlaceToken my_id, transiting;
  std::array<san::PlaceToken, kNumFailureModes> cc;
  std::array<san::PlaceToken, kNumManeuvers> sm;  // by escalation stage

  // Shared places.
  san::PlaceToken out, joining, placing, leaving_direct, leaving_transit;
  san::PlaceToken platoons, active_m;
  san::PlaceToken class_a, class_b, class_c, ko_total;
  san::PlaceToken safe_exits, ko_exits;

  san::PlaceToken class_place(Maneuver m) const {
    switch (maneuver_class(m)) {
      case SeverityClass::kA: return class_a;
      case SeverityClass::kB: return class_b;
      case SeverityClass::kC: return class_c;
    }
    throw util::InvariantError("unknown severity class");
  }

  int me(const san::MarkingRef& ref) const {
    return static_cast<int>(ref.replica()) + 1;
  }

  /// Current maneuver stage of this vehicle: 0 = none, 1..6 = stage+1.
  int current_stage(const san::MarkingRef& ref) const {
    return ref.get(active_m, ref.replica());
  }

  /// Activates maneuver stage `k1` (1-based), preempting a lower stage.
  void activate(const san::MarkingRef& ref, int k1) const {
    const int cur = current_stage(ref);
    if (cur >= k1) return;  // a higher/equal-priority maneuver runs already
    if (cur > 0) {
      ref.add(sm[cur - 1], -1);
      ref.add(class_place(static_cast<Maneuver>(cur - 1)), -1);
    }
    ref.add(sm[k1 - 1], +1);
    ref.add(class_place(static_cast<Maneuver>(k1 - 1)), +1);
    ref.set(active_m, ref.replica(), k1);
  }

  /// Deactivates stage `k1` without replacement bookkeeping.
  void deactivate(const san::MarkingRef& ref, int k1) const {
    ref.add(sm[k1 - 1], -1);
    ref.add(class_place(static_cast<Maneuver>(k1 - 1)), -1);
    ref.set(active_m, ref.replica(), 0);
  }

  /// Clears the replica back to the idle pool and frees a slot.
  void reset_and_free(const san::MarkingRef& ref) const {
    for (auto p : cc) ref.set(p, 0);
    ref.set(my_id, 0);
    ref.set(transiting, 0);
    ref.add(out, +1);
  }

  /// Removes this vehicle from whichever platoon holds it (no-op for
  /// free agents / transiting vehicles).
  void leave_platoons(const san::MarkingRef& ref) const {
    const int id = me(ref);
    for (int l = 0; l < params.num_platoons; ++l)
      lane_remove(ref, LaneRef{platoons, l, params.max_per_platoon}, id);
  }

  /// Success probability of maneuver `m` for this vehicle, given the
  /// coordination strategy and the health of the required assistants.
  double success_probability(const san::MarkingRef& ref, Maneuver m) const {
    const int id = me(ref);
    const int n = params.max_per_platoon;
    const int my_lane = find_vehicle_lane(ref, platoons,
                                          params.num_platoons, n, id);
    if (my_lane < 0) {
      // Free agent (e.g. failed while transiting): no assistance available.
      const AssistantSet solo = policy.assistants(m, 0, 1);
      const bool needs_help =
          !solo.own_platoon_positions.empty() || solo.neighbor_leader;
      return needs_help ? 0.0 : params.q_intrinsic;
    }
    const LaneRef own{platoons, my_lane, n};
    const int pos = lane_find(ref, own, id);
    const int size = lane_size(ref, own);
    const AssistantSet set = policy.assistants(m, pos, size);
    for (int p : set.own_platoon_positions) {
      const int vid = own.get(ref, p);
      if (vid == 0) continue;  // compaction guarantees this only past `size`
      if (ref.get(active_m, static_cast<std::uint32_t>(vid - 1)) != 0)
        return 0.0;  // required assistant is itself recovering
    }
    if (set.neighbor_leader) {
      const int nl = escort_lane(ref, platoons, params.num_platoons, n,
                                 my_lane);
      if (nl < 0) return 0.0;  // no neighbouring platoon to escort
      const int leader = LaneRef{platoons, nl, n}.get(ref, 0);
      if (ref.get(active_m, static_cast<std::uint32_t>(leader - 1)) != 0)
        return 0.0;
    }
    return params.q_intrinsic;
  }
};

}  // namespace

std::shared_ptr<san::AtomicModel> build_vehicle_model(
    const Parameters& params) {
  params.validate();
  auto model = std::make_shared<san::AtomicModel>("one_vehicle");
  auto ctx = std::make_shared<VehicleContext>();
  ctx->params = params;
  ctx->policy = CoordinationPolicy(params.strategy);

  const int cap = params.capacity();

  // Local places.
  ctx->my_id = model->place("my_id");
  ctx->transiting = model->place("transiting");
  for (std::size_t i = 0; i < kNumFailureModes; ++i)
    ctx->cc[i] = model->place("CC" + std::to_string(i + 1));
  for (std::size_t k = 0; k < kNumManeuvers; ++k)
    ctx->sm[k] = model->place("SM" + std::to_string(k + 1));

  // Shared places (merged with the other submodels by name).
  ctx->out = model->place("OUT");
  ctx->joining = model->place("joining");
  ctx->placing = model->place("placing");
  ctx->leaving_direct = model->place("leaving_direct");
  ctx->leaving_transit = model->place("leaving_transit");
  ctx->platoons = model->extended_place("platoons", cap);
  ctx->active_m = model->extended_place("active_m", cap);
  ctx->class_a = model->place("class_A");
  ctx->class_b = model->place("class_B");
  ctx->class_c = model->place("class_C");
  ctx->ko_total = model->place("KO_total");
  ctx->safe_exits = model->place("safe_exits");
  ctx->ko_exits = model->place("ko_exits");

  // Checked structural declarations.  These are *verified*, not trusted:
  // the lint probe flags any discovered marking that exceeds a declared
  // capacity (STRUCT002) and exact state-space generation re-checks every
  // interned marking, so a wrong value here fails loudly.  my_id, placing,
  // leaving_* and the platoons slots hold vehicle identities (1..cap);
  // transiting, joining and the CC/SM stages are 0-1 flags; an active_m
  // slot holds a maneuver stage (0..kNumManeuvers).  safe_exits, ko_exits
  // (and Configuration's ext_id) are monotone statistics counters and stay
  // undeclared — they really are unbounded over infinite horizons.
  model->capacity(ctx->my_id, cap)
      .capacity(ctx->transiting, 1)
      .capacity(ctx->out, cap)
      .capacity(ctx->joining, 1)
      .capacity(ctx->placing, cap)
      .capacity(ctx->leaving_direct, cap)
      .capacity(ctx->leaving_transit, cap)
      .capacity(ctx->platoons, cap)
      .capacity(ctx->active_m, static_cast<std::int32_t>(kNumManeuvers))
      .capacity(ctx->class_a, cap)
      .capacity(ctx->class_b, cap)
      .capacity(ctx->class_c, cap)
      .capacity(ctx->ko_total, 1)
      .absorbing(ctx->ko_total);
  for (auto p : ctx->cc) model->capacity(p, 1);
  for (auto p : ctx->sm) model->capacity(p, 1);

  // --- claim: an idle replica adopts the joining vehicle's identity.
  model->instant_activity("claim")
      .priority(7)
      .reads({ctx->joining, ctx->my_id})
      .writes({ctx->joining, ctx->my_id, ctx->cc[0], ctx->cc[1], ctx->cc[2],
               ctx->cc[3], ctx->cc[4], ctx->cc[5], ctx->placing})
      .input_gate(
          [ctx](const san::MarkingRef& m) {
            return m.get(ctx->joining) > 0 && m.get(ctx->my_id) == 0;
          },
          [ctx](const san::MarkingRef& m) {
            m.add(ctx->joining, -1);
            const int id = ctx->me(m);
            m.set(ctx->my_id, id);
            for (auto cc : ctx->cc) m.set(cc, 1);
            m.set(ctx->placing, id);
          });

  // --- voluntary leave from lane 0 (designated by Dynamicity).
  model->instant_activity("voluntary_exit")
      .priority(6)
      .reads({ctx->leaving_direct, ctx->my_id})
      .writes({ctx->leaving_direct, ctx->cc[0], ctx->cc[1], ctx->cc[2],
               ctx->cc[3], ctx->cc[4], ctx->cc[5], ctx->my_id,
               ctx->transiting, ctx->out, ctx->safe_exits})
      .input_gate(
          [ctx](const san::MarkingRef& m) {
            return m.get(ctx->leaving_direct) == ctx->me(m) &&
                   m.get(ctx->my_id) > 0;
          },
          [ctx](const san::MarkingRef& m) {
            m.set(ctx->leaving_direct, 0);
            ctx->reset_and_free(m);
            m.add(ctx->safe_exits, +1);
          });

  // --- leavers from other lanes enter the transit phase first (§4.1).
  model->instant_activity("start_transit")
      .priority(6)
      .reads({ctx->leaving_transit, ctx->my_id})
      .writes({ctx->leaving_transit, ctx->transiting})
      .input_gate(
          [ctx](const san::MarkingRef& m) {
            return m.get(ctx->leaving_transit) == ctx->me(m) &&
                   m.get(ctx->my_id) > 0;
          },
          [ctx](const san::MarkingRef& m) {
            m.set(ctx->leaving_transit, 0);
            m.set(ctx->transiting, 1);
          });

  // --- transit completes: the vehicle leaves the highway (§4.1: 3–4 min).
  model->timed_activity("exit_transit")
      .distribution(util::Distribution::Exponential(params.transit_rate))
      .reads({ctx->transiting, ctx->active_m})
      .writes({ctx->cc[0], ctx->cc[1], ctx->cc[2], ctx->cc[3], ctx->cc[4],
               ctx->cc[5], ctx->my_id, ctx->transiting, ctx->out,
               ctx->safe_exits})
      .input_gate(
          [ctx](const san::MarkingRef& m) {
            return m.get(ctx->transiting) > 0 && ctx->current_stage(m) == 0;
          },
          [ctx](const san::MarkingRef& m) {
            ctx->reset_and_free(m);
            m.add(ctx->safe_exits, +1);
          });

  // --- failure modes L1..L6 (Table 1).
  for (std::size_t i = 0; i < kNumFailureModes; ++i) {
    const auto fm = static_cast<FailureMode>(i);
    if (!params.enabled(fm)) continue;
    const int k1 = stage(maneuver_for(fm)) + 1;
    auto act =
        model->timed_activity("L" + std::to_string(i + 1))
            .distribution(
                util::Distribution::Exponential(params.failure_rate(fm)))
            .reads({ctx->my_id, ctx->cc[i], ctx->ko_total})
            // activate(k1) preempts at most the stages below k1 before
            // starting stage k1, so exactly sm[0..k1-1] (and those stages'
            // class counters) are writable; higher stages never are.
            .writes({ctx->cc[i], ctx->active_m});
    for (int j = 0; j < k1; ++j)
      act.writes({ctx->sm[j], ctx->class_place(static_cast<Maneuver>(j))});
    act.input_gate(
           [ctx, i](const san::MarkingRef& m) {
             return m.get(ctx->my_id) > 0 && m.get(ctx->cc[i]) > 0 &&
                    m.get(ctx->ko_total) == 0;
           },
           [ctx, i](const san::MarkingRef& m) { m.add(ctx->cc[i], -1); })
        .output_gate([ctx, k1](const san::MarkingRef& m) {
          ctx->activate(m, k1);
        });
  }

  // --- maneuver executions M1..M6 (one per escalation stage).
  for (std::size_t k = 0; k < kNumManeuvers; ++k) {
    const auto m_enum = static_cast<Maneuver>(k);
    const int k1 = static_cast<int>(k) + 1;
    auto act =
        model->timed_activity("M" + std::to_string(k1))
            .distribution(params.maneuver_distribution(m_enum))
            .reads({ctx->sm[k], ctx->ko_total})
            // Union over the success / escalate / eject cases; the success
            // probability is a case weight and needs no read declaration.
            // Only the class counters of stage k (deactivated) and stage
            // k+1 (activated on escalation) can change, and ko_exits only
            // on the final-stage eject path.
            .writes({ctx->sm[k], ctx->class_place(m_enum), ctx->active_m,
                     ctx->platoons, ctx->cc[0], ctx->cc[1], ctx->cc[2],
                     ctx->cc[3], ctx->cc[4], ctx->cc[5], ctx->my_id,
                     ctx->transiting, ctx->out, ctx->safe_exits})
            .input_gate([ctx, k](const san::MarkingRef& m) {
              return m.get(ctx->sm[k]) > 0 && m.get(ctx->ko_total) == 0;
            });
    if (k + 1 < kNumManeuvers)
      act.writes(
          {ctx->sm[k + 1], ctx->class_place(static_cast<Maneuver>(k + 1))});
    else
      act.writes({ctx->ko_exits});
    // Case 0: success — the vehicle exits the highway safely.
    act.add_case([ctx, m_enum](const san::MarkingRef& m) {
      return ctx->success_probability(m, m_enum);
    });
    // Case 1: failure — escalate, or eject as free agent after AS.
    act.add_case([ctx, m_enum](const san::MarkingRef& m) {
      return 1.0 - ctx->success_probability(m, m_enum);
    });
    act.output_gate(
        [ctx, k1](const san::MarkingRef& m) {
          ctx->deactivate(m, k1);
          ctx->leave_platoons(m);
          ctx->reset_and_free(m);
          m.add(ctx->safe_exits, +1);
        },
        /*case_idx=*/0);
    if (k + 1 < kNumManeuvers) {
      act.output_gate(
          [ctx, k1](const san::MarkingRef& m) {
            ctx->deactivate(m, k1);
            ctx->activate(m, k1 + 1);
          },
          /*case_idx=*/1);
    } else {
      // Failed Aided Stop: the vehicle becomes a free agent (v_KO); the
      // platoons continue without it and the slot is eventually refilled.
      act.output_gate(
          [ctx, k1](const san::MarkingRef& m) {
            ctx->deactivate(m, k1);
            ctx->leave_platoons(m);
            ctx->reset_and_free(m);
            m.add(ctx->ko_exits, +1);
          },
          /*case_idx=*/1);
    }
  }

  return model;
}

}  // namespace ahs
