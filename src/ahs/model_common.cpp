#include "ahs/model_common.h"

#include "util/error.h"

namespace ahs {

const std::set<std::string>& shared_place_names() {
  static const std::set<std::string> kNames = {
      "IN",        "OUT",       "ext_id",          "joining",
      "placing",   "leaving_direct", "leaving_transit", "platoons",
      "active_m",  "class_A",   "class_B",         "class_C",
      "KO_total",  "safe_exits", "ko_exits"};
  return kNames;
}

int lane_find(const san::MarkingRef& m, const LaneRef& lane, int id) {
  for (int p = 0; p < lane.capacity; ++p)
    if (lane.get(m, p) == id) return p;
  return -1;
}

int lane_size(const san::MarkingRef& m, const LaneRef& lane) {
  int count = 0;
  for (int p = 0; p < lane.capacity; ++p) {
    if (lane.get(m, p) == 0) break;  // compacted: first zero ends the lane
    ++count;
  }
  return count;
}

void lane_append(const san::MarkingRef& m, const LaneRef& lane, int id) {
  for (int p = 0; p < lane.capacity; ++p) {
    if (lane.get(m, p) == 0) {
      lane.set(m, p, id);
      return;
    }
  }
  throw util::ModelError("lane_append: platoon is full");
}

void lane_remove(const san::MarkingRef& m, const LaneRef& lane, int id) {
  bool found = false;
  for (int p = 0; p < lane.capacity; ++p) {
    if (!found && lane.get(m, p) == id) found = true;
    if (found)
      lane.set(m, p, p + 1 < lane.capacity ? lane.get(m, p + 1) : 0);
  }
}

int lane_rearmost_healthy(const san::MarkingRef& m, const LaneRef& lane,
                          san::PlaceToken active_m) {
  const int size = lane_size(m, lane);
  for (int p = size - 1; p >= 0; --p) {
    const int id = lane.get(m, p);
    if (id > 0 &&
        m.get(active_m, static_cast<std::uint32_t>(id - 1)) == 0)
      return p;
  }
  return -1;
}

int find_vehicle_lane(const san::MarkingRef& m, san::PlaceToken platoons,
                      int num_platoons, int capacity, int id) {
  for (int l = 0; l < num_platoons; ++l) {
    const LaneRef lane{platoons, l, capacity};
    if (lane_find(m, lane, id) >= 0) return l;
  }
  return -1;
}

int escort_lane(const san::MarkingRef& m, san::PlaceToken platoons,
                int num_platoons, int capacity, int lane) {
  for (int delta : {-1, 1}) {
    const int l = lane + delta;
    if (l < 0 || l >= num_platoons) continue;
    const LaneRef neighbor{platoons, l, capacity};
    if (lane_size(m, neighbor) > 0) return l;
  }
  return -1;
}

}  // namespace ahs
