#include "ahs/lumped.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "ctmc/stationary.h"
#include "ctmc/uniformization.h"
#include "util/error.h"

namespace ahs {

SeverityCounts LumpedState::severity() const {
  SeverityCounts s;
  for (std::size_t k = 0; k < kNumManeuvers; ++k) {
    switch (maneuver_class(static_cast<Maneuver>(k))) {
      case SeverityClass::kA: s.a += maneuvers[k]; break;
      case SeverityClass::kB: s.b += maneuvers[k]; break;
      case SeverityClass::kC: s.c += maneuvers[k]; break;
    }
  }
  return s;
}

namespace {

struct StateHash {
  std::size_t operator()(const LumpedState& s) const {
    std::size_t h = 1469598103934665603ull;
    auto mix = [&h](int x) {
      h ^= static_cast<std::size_t>(static_cast<unsigned>(x));
      h *= 1099511628211ull;
    };
    for (int x : s.lanes) mix(x);
    mix(s.nt);
    for (int m : s.maneuvers) mix(m);
    return h;
  }
};

/// A transition rate as a sum of at most two (factor × coefficient) terms
/// (maneuver-failure edges are count·μ − count·avail·μ·q; everything else
/// is a single term).
struct RateExpr {
  std::array<LumpedStructure::Term, 2> terms{};
  int count = 0;

  static RateExpr single(LumpedStructure::Factor f, std::uint8_t index,
                         double coeff) {
    RateExpr e;
    e.terms[0] = {0, 0, f, index, coeff};
    e.count = 1;
    return e;
  }

  RateExpr scaled(double s) const {
    RateExpr e = *this;
    for (int i = 0; i < e.count; ++i) e.terms[i].coeff *= s;
    return e;
  }

  double value(const Parameters& params) const {
    double v = 0.0;
    for (int i = 0; i < count; ++i)
      v += terms[i].coeff * LumpedStructure::factor_value(
                                terms[i].factor, terms[i].index, params);
    return v;
  }
};

}  // namespace

double LumpedStructure::factor_value(Factor f, std::uint8_t index,
                                     const Parameters& params) {
  switch (f) {
    case Factor::kFailureRate:
      return params.failure_rate(static_cast<FailureMode>(index));
    case Factor::kManeuverRate:
      return params.maneuver_rates[index];
    case Factor::kManeuverRateQ:
      return params.maneuver_rates[index] * params.q_intrinsic;
    case Factor::kLeaveRate: return params.leave_rate;
    case Factor::kTransitRate: return params.transit_rate;
    case Factor::kChangeRate: return params.change_rate;
    case Factor::kJoinRate: return params.join_rate;
  }
  throw util::InvariantError("unknown rate factor");
}

LumpedModel::LumpedModel(Parameters params) : params_(std::move(params)) {
  params_.validate();
  AHS_REQUIRE(
      params_.maneuver_time_model == ManeuverTimeModel::kExponential,
      "the lumped CTMC requires exponential maneuver times; use a "
      "simulation engine for other distributions");
  AHS_REQUIRE(params_.adjacency_radius == 0,
              "the count-lumped model has no vehicle positions; use a "
              "full-SAN engine for adjacency-scoped severity");
}

LumpedModel::LumpedModel(Parameters params,
                         std::shared_ptr<const LumpedStructure> structure)
    : LumpedModel(std::move(params)) {
  if (structure != nullptr) {
    AHS_REQUIRE(structure->fingerprint == params_.structural_fingerprint(),
                "cached LumpedStructure does not match these parameters "
                "(different structural fingerprint)");
    structure_ = std::move(structure);
  }
}

std::shared_ptr<const LumpedStructure> explore_lumped_structure(
    const Parameters& params) {
  params.validate();
  const int n = params.max_per_platoon;
  const int num_lanes = params.num_platoons;
  const CoordinationPolicy policy(params.strategy);

  auto structure = std::make_shared<LumpedStructure>();
  structure->fingerprint = params.structural_fingerprint();

  std::unordered_map<LumpedState, std::uint32_t, StateHash> index;
  std::deque<std::uint32_t> frontier;
  std::vector<LumpedState>& states = structure->states;

  auto intern = [&](const LumpedState& s) -> std::uint32_t {
    const auto it = index.find(s);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(states.size());
    index.emplace(s, id);
    states.push_back(s);
    frontier.push_back(id);
    return id;
  };

  LumpedState init;
  for (int l = 0; l < num_lanes; ++l) init.lanes[l] = n;
  structure->initial_state = intern(init);

  // The absorbing UNSAFE state is appended after exploration; transitions
  // into it are collected with a sentinel and patched afterwards.
  constexpr std::uint32_t kUnsafeSentinel = UINT32_MAX;

  using Factor = LumpedStructure::Factor;
  std::vector<LumpedStructure::Term>& terms = structure->terms;

  // Adds an edge, routing catastrophic targets to the sentinel.  The edge
  // is pruned when its rate under the exploring parameters is <= 0; every
  // guard below depends only on quantities pinned by the structural
  // fingerprint, so the same decision is reached for any parameter set the
  // structure is later reused for.
  auto add_edge = [&](std::uint32_t from, const LumpedState& to,
                      const RateExpr& expr) {
    if (expr.value(params) <= 0.0) return;
    const std::uint32_t target =
        is_catastrophic(to.severity()) ? kUnsafeSentinel : intern(to);
    for (int i = 0; i < expr.count; ++i) {
      LumpedStructure::Term t = expr.terms[i];
      t.from = from;
      t.to = target;
      terms.push_back(t);
    }
  };

  // Decrements the population holding a departing vehicle proportionally
  // across lanes and transit.
  auto add_departures = [&](std::uint32_t from, const LumpedState& base,
                            const RateExpr& total_rate) {
    const int nv = base.vehicles();
    if (nv <= 0) return;
    for (int l = 0; l < num_lanes; ++l) {
      if (base.lanes[l] == 0) continue;
      LumpedState next = base;
      --next.lanes[l];
      add_edge(from, next,
               total_rate.scaled(static_cast<double>(base.lanes[l]) / nv));
    }
    if (base.nt > 0) {
      LumpedState next = base;
      --next.nt;
      add_edge(from, next,
               total_rate.scaled(static_cast<double>(base.nt) / nv));
    }
  };

  while (!frontier.empty()) {
    const std::uint32_t sid = frontier.front();
    frontier.pop_front();
    const LumpedState s = states[sid];

    const int nv = s.vehicles();
    const int healthy = s.healthy();
    AHS_ASSERT(healthy >= 0, "negative healthy-vehicle count");

    // --- Failure-mode arrivals (per healthy vehicle).
    if (healthy > 0) {
      for (FailureMode fm : kAllFailureModes) {
        if (!params.enabled(fm)) continue;
        LumpedState next = s;
        ++next.maneuvers[stage(maneuver_for(fm))];
        add_edge(sid, next,
                 RateExpr::single(Factor::kFailureRate,
                                  static_cast<std::uint8_t>(fm), healthy));
      }
    }

    // --- Maneuver completions.
    // Success requires every assistant healthy; the availability of k
    // assistants among the other nv−1 vehicles, of which `healthy` are
    // healthy, is approximated by (healthy/(nv−1))^k (exchangeability).
    const double avg_platoon = std::max(
        1.0, static_cast<double>(s.platoon_vehicles()) / num_lanes);
    for (std::size_t k = 0; k < kNumManeuvers; ++k) {
      if (s.maneuvers[k] == 0) continue;
      const auto m = static_cast<Maneuver>(k);
      const double count = s.maneuvers[k];
      const double need = policy.assistant_count(m, avg_platoon);
      double avail = 1.0;
      // A TIE-E escort needs a neighbouring platoon; a single-lane AHS has
      // none (the full model's escort_lane returns -1 there).
      if (m == Maneuver::kTakeImmediateExitEscorted && num_lanes < 2)
        avail = 0.0;
      if (avail > 0.0 && need > 0.0) {
        if (nv <= 1) {
          avail = 0.0;
        } else {
          const double frac =
              std::min(1.0, static_cast<double>(healthy) /
                                static_cast<double>(nv - 1));
          avail = std::pow(frac, need);
        }
      }
      const auto ki = static_cast<std::uint8_t>(k);

      // Success (rate count·μ·q, q = q_intrinsic·avail): the vehicle exits
      // the highway; its platoon membership is resolved proportionally.
      LumpedState done = s;
      --done.maneuvers[k];
      add_departures(
          sid, done,
          RateExpr::single(Factor::kManeuverRateQ, ki, count * avail));

      // Failure (rate count·μ·(1 − q) = count·μ − count·avail·μ·q_i):
      // escalate to the next stage, or leave as a free agent after a failed
      // Aided Stop (v_KO — the vehicle is lost to the platoons but the
      // event itself is not catastrophic).
      RateExpr fail = RateExpr::single(Factor::kManeuverRate, ki, count);
      fail.terms[1] = {0, 0, Factor::kManeuverRateQ, ki, -count * avail};
      fail.count = 2;
      Maneuver next_m;
      if (next_maneuver(m, next_m)) {
        LumpedState next = done;
        ++next.maneuvers[stage(next_m)];
        add_edge(sid, next, fail);
      } else {
        add_departures(sid, done, fail);
      }
    }

    // --- Voluntary leaves (healthy vehicles only).  Lane 0 exits
    // directly; other lanes transit through the exit lane first, up to the
    // truncation cap (see Parameters::max_transit).
    if (healthy > 0) {
      for (int l = 0; l < num_lanes; ++l) {
        if (s.lanes[l] == 0) continue;
        LumpedState next = s;
        --next.lanes[l];
        if (l > 0 && s.nt < std::min(params.max_transit, params.capacity()))
          ++next.nt;
        add_edge(sid, next, RateExpr::single(Factor::kLeaveRate, 0, 1.0));
      }
    }

    // --- Transit completion (healthy transit vehicles only — a transiting
    // vehicle that failed stays until its maneuver resolves, as in the full
    // model's exit_transit gate).
    if (s.nt > 0 && healthy > 0) {
      LumpedState next = s;
      --next.nt;
      add_edge(sid, next,
               RateExpr::single(Factor::kTransitRate, 0,
                                std::min(s.nt, healthy)));
    }

    // --- Platoon changes between adjacent lanes.
    if (healthy > 0) {
      for (int l = 0; l < num_lanes; ++l) {
        for (int delta : {-1, 1}) {
          const int target = l + delta;
          if (target < 0 || target >= num_lanes) continue;
          if (s.lanes[l] == 0 || s.lanes[target] >= n) continue;
          LumpedState next = s;
          --next.lanes[l];
          ++next.lanes[target];
          add_edge(sid, next, RateExpr::single(Factor::kChangeRate, 0, 1.0));
        }
      }
    }

    // --- Joins: rate join_rate per free slot (infinite-server semantics,
    // see Parameters::join_rate); the paper's JP splits uniformly between
    // platoons with room.
    if (nv < params.capacity()) {
      int rooms = 0;
      for (int l = 0; l < num_lanes; ++l)
        if (s.lanes[l] < n) ++rooms;
      if (rooms > 0) {
        const double per_room =
            static_cast<double>(params.capacity() - nv) / rooms;
        for (int l = 0; l < num_lanes; ++l) {
          if (s.lanes[l] >= n) continue;
          LumpedState next = s;
          ++next.lanes[l];
          add_edge(sid, next,
                   RateExpr::single(Factor::kJoinRate, 0, per_room));
        }
      }
    }
  }

  // Patch the sentinel to the actual UNSAFE index (last state).
  structure->unsafe = static_cast<std::uint32_t>(states.size());
  for (auto& t : terms)
    if (t.to == kUnsafeSentinel) t.to = structure->unsafe;

  // Pre-sort by (from, to) so the numeric rebuild hands from_triplets
  // already-ordered input (its sort then degenerates to a fast pass).
  std::sort(terms.begin(), terms.end(),
            [](const LumpedStructure::Term& a, const LumpedStructure::Term& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  return structure;
}

void LumpedModel::build() const {
  if (built_) return;
  if (structure_ == nullptr) structure_ = explore_lumped_structure(params_);
  const LumpedStructure& st = *structure_;

  std::vector<ctmc::Triplet> triplets;
  triplets.reserve(st.terms.size());
  for (const LumpedStructure::Term& t : st.terms)
    triplets.push_back(
        {t.from, t.to,
         t.coeff * LumpedStructure::factor_value(t.factor, t.index, params_)});

  const auto total = static_cast<std::uint32_t>(st.states.size() + 1);
  chain_.num_states = total;
  chain_.rates =
      ctmc::CsrMatrix::from_triplets(total, total, std::move(triplets));
  chain_.exit_rate.resize(total);
  for (std::uint32_t i = 0; i < total; ++i)
    chain_.exit_rate[i] = chain_.rates.row_sum(i);
  chain_.initial.assign(total, 0.0);
  chain_.initial[st.initial_state] = 1.0;
  chain_.validate();
  built_ = true;
}

std::size_t LumpedModel::num_states() const {
  build();
  return chain_.num_states;
}

std::uint32_t LumpedModel::unsafe_state() const {
  build();
  return structure_->unsafe;
}

const ctmc::MarkovChain& LumpedModel::chain() const {
  build();
  return chain_;
}

std::shared_ptr<const LumpedStructure> LumpedModel::structure() const {
  build();
  return structure_;
}

const LumpedState& LumpedModel::state(std::uint32_t s) const {
  build();
  AHS_REQUIRE(s < structure_->states.size(),
              "state index out of range (or UNSAFE)");
  return structure_->states[s];
}

std::vector<double> LumpedModel::unsafety(
    std::span<const double> times, util::ThreadPool* pool,
    ctmc::PoissonCache* poisson_cache) const {
  ctmc::UniformizationOptions opts;
  opts.pool = pool;
  opts.poisson_cache = poisson_cache;
  return unsafety(times, opts, nullptr);
}

std::vector<double> LumpedModel::unsafety(
    std::span<const double> times, const ctmc::UniformizationOptions& base,
    std::uint64_t* iterations) const {
  build();
  std::vector<double> reward(chain_.num_states, 0.0);
  reward[structure_->unsafe] = 1.0;
  ctmc::UniformizationOptions opts = base;
  opts.epsilon = 1e-14;
  const auto sol = ctmc::solve_transient(chain_, reward, times, opts);
  if (iterations != nullptr) *iterations += sol.total_iterations;
  return sol.expected_reward;
}

double LumpedModel::mean_time_to_unsafe() const {
  build();
  // At realistic failure rates absorption takes ~1e6..1e9 hours while the
  // safe dynamics mix within hours, so the time to UNSAFE is asymptotically
  // Exponential(κ) with κ the quasi-stationary absorption hazard.
  std::vector<bool> absorbing(chain_.num_states, false);
  absorbing[structure_->unsafe] = true;
  const auto res = ctmc::quasi_stationary_absorption(chain_, absorbing);
  AHS_ASSERT(res.absorption_rate > 0.0, "absorption rate must be positive");
  return 1.0 / res.absorption_rate;
}

double LumpedModel::expected_maneuver_hours(double t) const {
  build();
  const std::vector<LumpedState>& states = structure_->states;
  std::vector<double> reward(chain_.num_states, 0.0);
  for (std::size_t i = 0; i < states.size(); ++i)
    reward[i] = states[i].maneuvering();
  const std::vector<double> times = {t};
  const auto sol = ctmc::solve_accumulated(chain_, reward, times);
  return sol.accumulated[0];
}

std::vector<double> LumpedModel::expected_vehicles(
    std::span<const double> times) const {
  build();
  const std::vector<LumpedState>& states = structure_->states;
  std::vector<double> reward(chain_.num_states, 0.0);
  for (std::size_t i = 0; i < states.size(); ++i)
    reward[i] = states[i].vehicles();
  const auto sol = ctmc::solve_transient(chain_, reward, times);
  return sol.expected_reward;
}

}  // namespace ahs
