#include "ahs/lumped.h"

#include <cmath>
#include <deque>
#include <unordered_map>

#include "ctmc/stationary.h"
#include "ctmc/uniformization.h"
#include "util/error.h"

namespace ahs {

SeverityCounts LumpedState::severity() const {
  SeverityCounts s;
  for (std::size_t k = 0; k < kNumManeuvers; ++k) {
    switch (maneuver_class(static_cast<Maneuver>(k))) {
      case SeverityClass::kA: s.a += maneuvers[k]; break;
      case SeverityClass::kB: s.b += maneuvers[k]; break;
      case SeverityClass::kC: s.c += maneuvers[k]; break;
    }
  }
  return s;
}

namespace {

struct StateHash {
  std::size_t operator()(const LumpedState& s) const {
    std::size_t h = 1469598103934665603ull;
    auto mix = [&h](int x) {
      h ^= static_cast<std::size_t>(static_cast<unsigned>(x));
      h *= 1099511628211ull;
    };
    for (int x : s.lanes) mix(x);
    mix(s.nt);
    for (int m : s.maneuvers) mix(m);
    return h;
  }
};

}  // namespace

LumpedModel::LumpedModel(Parameters params) : params_(std::move(params)) {
  params_.validate();
  AHS_REQUIRE(
      params_.maneuver_time_model == ManeuverTimeModel::kExponential,
      "the lumped CTMC requires exponential maneuver times; use a "
      "simulation engine for other distributions");
  AHS_REQUIRE(params_.adjacency_radius == 0,
              "the count-lumped model has no vehicle positions; use a "
              "full-SAN engine for adjacency-scoped severity");
}

void LumpedModel::build() const {
  if (built_) return;

  const int n = params_.max_per_platoon;
  const int num_lanes = params_.num_platoons;
  const CoordinationPolicy policy(params_.strategy);

  std::unordered_map<LumpedState, std::uint32_t, StateHash> index;
  std::deque<std::uint32_t> frontier;
  states_.clear();

  auto intern = [&](const LumpedState& s) -> std::uint32_t {
    const auto it = index.find(s);
    if (it != index.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(states_.size());
    index.emplace(s, id);
    states_.push_back(s);
    frontier.push_back(id);
    return id;
  };

  LumpedState init;
  for (int l = 0; l < num_lanes; ++l) init.lanes[l] = n;
  const std::uint32_t init_id = intern(init);

  // The absorbing UNSAFE state is appended after exploration; transitions
  // into it are collected with a sentinel and patched afterwards.
  constexpr std::uint32_t kUnsafeSentinel = UINT32_MAX;

  std::vector<ctmc::Triplet> triplets;

  // Adds an edge, routing catastrophic targets to the sentinel.
  auto add_edge = [&](std::uint32_t from, const LumpedState& to,
                      double rate) {
    if (rate <= 0.0) return;
    if (is_catastrophic(to.severity())) {
      triplets.push_back({from, kUnsafeSentinel, rate});
    } else {
      triplets.push_back({from, intern(to), rate});
    }
  };

  // Decrements the population holding a departing vehicle proportionally
  // across lanes and transit.
  auto add_departures = [&](std::uint32_t from, const LumpedState& base,
                            double total_rate) {
    const int nv = base.vehicles();
    if (nv <= 0 || total_rate <= 0.0) return;
    for (int l = 0; l < num_lanes; ++l) {
      if (base.lanes[l] == 0) continue;
      LumpedState next = base;
      --next.lanes[l];
      add_edge(from, next, total_rate * base.lanes[l] / nv);
    }
    if (base.nt > 0) {
      LumpedState next = base;
      --next.nt;
      add_edge(from, next, total_rate * base.nt / nv);
    }
  };

  while (!frontier.empty()) {
    const std::uint32_t sid = frontier.front();
    frontier.pop_front();
    const LumpedState s = states_[sid];

    const int nv = s.vehicles();
    const int healthy = s.healthy();
    AHS_ASSERT(healthy >= 0, "negative healthy-vehicle count");

    // --- Failure-mode arrivals (per healthy vehicle).
    if (healthy > 0) {
      for (FailureMode fm : kAllFailureModes) {
        if (!params_.enabled(fm)) continue;
        LumpedState next = s;
        ++next.maneuvers[stage(maneuver_for(fm))];
        add_edge(sid, next, healthy * params_.failure_rate(fm));
      }
    }

    // --- Maneuver completions.
    // Success requires every assistant healthy; the availability of k
    // assistants among the other nv−1 vehicles, of which `healthy` are
    // healthy, is approximated by (healthy/(nv−1))^k (exchangeability).
    const double avg_platoon = std::max(
        1.0, static_cast<double>(s.platoon_vehicles()) / num_lanes);
    for (std::size_t k = 0; k < kNumManeuvers; ++k) {
      if (s.maneuvers[k] == 0) continue;
      const auto m = static_cast<Maneuver>(k);
      const double rate = s.maneuvers[k] * params_.maneuver_rate(m);
      double need = policy.assistant_count(m, avg_platoon);
      double avail = 1.0;
      // A TIE-E escort needs a neighbouring platoon; a single-lane AHS has
      // none (the full model's escort_lane returns -1 there).
      if (m == Maneuver::kTakeImmediateExitEscorted && num_lanes < 2)
        avail = 0.0;
      if (avail > 0.0 && need > 0.0) {
        if (nv <= 1) {
          avail = 0.0;
        } else {
          const double frac =
              std::min(1.0, static_cast<double>(healthy) /
                                static_cast<double>(nv - 1));
          avail = std::pow(frac, need);
        }
      }
      const double q = params_.q_intrinsic * avail;

      // Success: the vehicle exits the highway; its platoon membership is
      // resolved proportionally.
      LumpedState done = s;
      --done.maneuvers[k];
      if (q > 0.0) add_departures(sid, done, rate * q);

      // Failure: escalate to the next stage, or leave as a free agent after
      // a failed Aided Stop (v_KO — the vehicle is lost to the platoons but
      // the event itself is not catastrophic).
      const double fail_rate = rate * (1.0 - q);
      if (fail_rate > 0.0) {
        Maneuver next_m;
        if (next_maneuver(m, next_m)) {
          LumpedState next = done;
          ++next.maneuvers[stage(next_m)];
          add_edge(sid, next, fail_rate);
        } else {
          add_departures(sid, done, fail_rate);
        }
      }
    }

    // --- Voluntary leaves (healthy vehicles only).  Lane 0 exits
    // directly; other lanes transit through the exit lane first, up to the
    // truncation cap (see Parameters::max_transit).
    if (healthy > 0) {
      for (int l = 0; l < num_lanes; ++l) {
        if (s.lanes[l] == 0) continue;
        LumpedState next = s;
        --next.lanes[l];
        if (l > 0 &&
            s.nt < std::min(params_.max_transit, params_.capacity()))
          ++next.nt;
        add_edge(sid, next, params_.leave_rate);
      }
    }

    // --- Transit completion (healthy transit vehicles only — a transiting
    // vehicle that failed stays until its maneuver resolves, as in the full
    // model's exit_transit gate).
    if (s.nt > 0 && healthy > 0) {
      LumpedState next = s;
      --next.nt;
      add_edge(sid, next,
               std::min(s.nt, healthy) * params_.transit_rate);
    }

    // --- Platoon changes between adjacent lanes.
    if (healthy > 0) {
      for (int l = 0; l < num_lanes; ++l) {
        for (int delta : {-1, 1}) {
          const int target = l + delta;
          if (target < 0 || target >= num_lanes) continue;
          if (s.lanes[l] == 0 || s.lanes[target] >= n) continue;
          LumpedState next = s;
          --next.lanes[l];
          ++next.lanes[target];
          add_edge(sid, next, params_.change_rate);
        }
      }
    }

    // --- Joins: rate join_rate per free slot (infinite-server semantics,
    // see Parameters::join_rate); the paper's JP splits uniformly between
    // platoons with room.
    if (nv < params_.capacity()) {
      const double total_join =
          params_.join_rate * (params_.capacity() - nv);
      int rooms = 0;
      for (int l = 0; l < num_lanes; ++l)
        if (s.lanes[l] < n) ++rooms;
      if (rooms > 0) {
        for (int l = 0; l < num_lanes; ++l) {
          if (s.lanes[l] >= n) continue;
          LumpedState next = s;
          ++next.lanes[l];
          add_edge(sid, next, total_join / rooms);
        }
      }
    }
  }

  // Patch the sentinel to the actual UNSAFE index (last state).
  unsafe_ = static_cast<std::uint32_t>(states_.size());
  for (auto& t : triplets)
    if (t.col == kUnsafeSentinel) t.col = unsafe_;

  const auto total = static_cast<std::uint32_t>(states_.size() + 1);
  chain_.num_states = total;
  chain_.rates =
      ctmc::CsrMatrix::from_triplets(total, total, std::move(triplets));
  chain_.exit_rate.resize(total);
  for (std::uint32_t i = 0; i < total; ++i)
    chain_.exit_rate[i] = chain_.rates.row_sum(i);
  chain_.initial.assign(total, 0.0);
  chain_.initial[init_id] = 1.0;
  chain_.validate();
  built_ = true;
}

std::size_t LumpedModel::num_states() const {
  build();
  return chain_.num_states;
}

std::uint32_t LumpedModel::unsafe_state() const {
  build();
  return unsafe_;
}

const ctmc::MarkovChain& LumpedModel::chain() const {
  build();
  return chain_;
}

const LumpedState& LumpedModel::state(std::uint32_t s) const {
  build();
  AHS_REQUIRE(s < states_.size(), "state index out of range (or UNSAFE)");
  return states_[s];
}

std::vector<double> LumpedModel::unsafety(std::span<const double> times) const {
  build();
  std::vector<double> reward(chain_.num_states, 0.0);
  reward[unsafe_] = 1.0;
  ctmc::UniformizationOptions opts;
  opts.epsilon = 1e-14;
  const auto sol = ctmc::solve_transient(chain_, reward, times, opts);
  return sol.expected_reward;
}

double LumpedModel::mean_time_to_unsafe() const {
  build();
  // At realistic failure rates absorption takes ~1e6..1e9 hours while the
  // safe dynamics mix within hours, so the time to UNSAFE is asymptotically
  // Exponential(κ) with κ the quasi-stationary absorption hazard.
  std::vector<bool> absorbing(chain_.num_states, false);
  absorbing[unsafe_] = true;
  const auto res = ctmc::quasi_stationary_absorption(chain_, absorbing);
  AHS_ASSERT(res.absorption_rate > 0.0, "absorption rate must be positive");
  return 1.0 / res.absorption_rate;
}

double LumpedModel::expected_maneuver_hours(double t) const {
  build();
  std::vector<double> reward(chain_.num_states, 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i)
    reward[i] = states_[i].maneuvering();
  const std::vector<double> times = {t};
  const auto sol = ctmc::solve_accumulated(chain_, reward, times);
  return sol.accumulated[0];
}

std::vector<double> LumpedModel::expected_vehicles(
    std::span<const double> times) const {
  build();
  std::vector<double> reward(chain_.num_states, 0.0);
  for (std::size_t i = 0; i < states_.size(); ++i)
    reward[i] = states_[i].vehicles();
  const auto sol = ctmc::solve_transient(chain_, reward, times);
  return sol.expected_reward;
}

}  // namespace ahs
