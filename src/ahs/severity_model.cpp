#include "ahs/severity_model.h"

#include <algorithm>
#include <vector>

#include "ahs/model_common.h"
#include "ahs/severity.h"

namespace ahs {

namespace {

/// Adjacency-scoped catastrophe check (Parameters::adjacency_radius > 0):
/// for every vehicle, collect the severity classes of active maneuvers
/// within ±radius positions in its own and the adjacent lanes (transiting
/// free agents count everywhere) and evaluate Table 2 on that window.
bool any_window_catastrophic(const san::MarkingRef& m,
                             san::PlaceToken platoons,
                             san::PlaceToken active_m, int num_platoons,
                             int n, int radius) {
  // Free agents: maneuvering vehicles absent from every lane.
  SeverityCounts free_agents;
  const int cap = num_platoons * n;
  for (int id = 1; id <= cap; ++id) {
    const int stage1 = m.get(active_m, static_cast<std::uint32_t>(id - 1));
    if (stage1 == 0) continue;
    if (find_vehicle_lane(m, platoons, num_platoons, n, id) >= 0) continue;
    switch (maneuver_class(static_cast<Maneuver>(stage1 - 1))) {
      case SeverityClass::kA: ++free_agents.a; break;
      case SeverityClass::kB: ++free_agents.b; break;
      case SeverityClass::kC: ++free_agents.c; break;
    }
  }

  for (int lane = 0; lane < num_platoons; ++lane) {
    const LaneRef center{platoons, lane, n};
    const int size = lane_size(m, center);
    for (int pos = 0; pos < size; ++pos) {
      SeverityCounts window = free_agents;
      for (int l = std::max(0, lane - 1);
           l <= std::min(num_platoons - 1, lane + 1); ++l) {
        const LaneRef lr{platoons, l, n};
        const int lsize = lane_size(m, lr);
        for (int p = std::max(0, pos - radius);
             p <= std::min(lsize - 1, pos + radius); ++p) {
          const int vid = lr.get(m, p);
          const int stage1 =
              m.get(active_m, static_cast<std::uint32_t>(vid - 1));
          if (stage1 == 0) continue;
          switch (maneuver_class(static_cast<Maneuver>(stage1 - 1))) {
            case SeverityClass::kA: ++window.a; break;
            case SeverityClass::kB: ++window.b; break;
            case SeverityClass::kC: ++window.c; break;
          }
        }
      }
      if (is_catastrophic(window)) return true;
    }
  }
  // No platoon vehicle anchors a window; free agents alone can still
  // combine (they share the roadway).
  return is_catastrophic(free_agents);
}

}  // namespace

std::shared_ptr<san::AtomicModel> build_severity_model(
    const Parameters& params) {
  params.validate();
  auto model = std::make_shared<san::AtomicModel>("severity");

  const san::PlaceToken class_a = model->place("class_A");
  const san::PlaceToken class_b = model->place("class_B");
  const san::PlaceToken class_c = model->place("class_C");
  const san::PlaceToken ko_total = model->place("KO_total");

  // Checked declarations (see vehicle_model.cpp for the policy).  KO_total
  // is the paper's absorbing marker: to_KO sets it exactly once and no
  // activity ever clears it — the absorbing-class analyzer certifies this
  // structurally and the probe cross-checks it empirically.
  model->capacity(class_a, params.capacity())
      .capacity(class_b, params.capacity())
      .capacity(class_c, params.capacity())
      .capacity(ko_total, 1)
      .absorbing(ko_total);

  san::Predicate catastrophic;
  auto to_ko = model->instant_activity("to_KO").priority(10).writes({ko_total});
  if (params.adjacency_radius == 0) {
    // Global scope: the shared class counters are the whole story.
    catastrophic = [class_a, class_b, class_c](const san::MarkingRef& m) {
      const SeverityCounts s{m.get(class_a), m.get(class_b),
                             m.get(class_c)};
      return is_catastrophic(s);
    };
    to_ko.reads({ko_total, class_a, class_b, class_c});
  } else {
    const san::PlaceToken platoons =
        model->extended_place("platoons", params.capacity());
    const san::PlaceToken active_m =
        model->extended_place("active_m", params.capacity());
    const int lanes = params.num_platoons;
    const int n = params.max_per_platoon;
    const int radius = params.adjacency_radius;
    catastrophic = [platoons, active_m, lanes, n,
                    radius](const san::MarkingRef& m) {
      return any_window_catastrophic(m, platoons, active_m, lanes, n,
                                     radius);
    };
    to_ko.reads({ko_total, platoons, active_m});
  }

  // The paper's KO_allocation input gate + instantaneous to_KO.
  to_ko
      .input_gate(
          [ko_total, catastrophic](const san::MarkingRef& m) {
            return m.get(ko_total) == 0 && catastrophic(m);
          },
          nullptr)
      .output_gate([ko_total](const san::MarkingRef& m) {
        m.set(ko_total, 1);
      });

  return model;
}

}  // namespace ahs
