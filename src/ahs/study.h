// High-level experiment driver: computes the paper's unsafety measure S(t)
// for a parameter set with a choice of engine.
//
//   kLumpedCtmc     exchangeability-lumped CTMC + uniformization (exact up
//                   to the lumping approximations; reaches 1e-13 — the
//                   engine behind every figure bench);
//   kSimulation     terminating simulation of the full SAN model, the
//                   paper's §4.1 protocol (10k+ replications, 95 % / 0.1
//                   relative CI); practical for λ ≳ 1e-3/h;
//   kSimulationIS   same with failure biasing + maneuver-failure case
//                   biasing; practical down to λ ≈ 1e-5/h;
//   kFullCtmc       exact CTMC of the full SAN model (small n only).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "ahs/parameters.h"
#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "util/stats.h"

namespace util {
class ThreadPool;
}

namespace ahs {

struct LumpedStructure;

enum class Engine { kLumpedCtmc, kSimulation, kSimulationIS, kFullCtmc };

const char* to_string(Engine e);
Engine parse_engine(const std::string& s);

struct StudyOptions {
  Engine engine = Engine::kLumpedCtmc;

  // Simulation-engine knobs (ignored by the CTMC engines).
  std::uint64_t min_replications = 2'000;
  std::uint64_t max_replications = 400'000;
  double rel_half_width = 0.1;   ///< paper §4.1
  double confidence = 0.95;      ///< paper §4.1
  std::uint64_t seed = 42;
  /// Replications per lockstep batch (sim::TransientOptions::batch_size).
  /// Results are bitwise identical for every value; purely a locality knob.
  std::uint32_t batch_size = 16;
  /// Failure-activity boost for kSimulationIS.  Choose it so the *expected
  /// number of boosted failure events per replication* stays O(1–5):
  /// overbiasing (hundreds of boosted failures per path) makes the
  /// estimator's finite-sample distribution heavy-tailed and biased low.
  /// A practical rule: boost ≈ target_failures /
  /// (vehicles · Σλ_i · horizon).
  double failure_boost = 50.0;
  /// Biased maneuver-failure case probability for kSimulationIS.
  double fail_case_bias = 0.2;

  // Full-CTMC knob.
  std::size_t max_states = 2'000'000;

  /// Optional pool for the uniformization vector–matrix products (CTMC
  /// engines only).  The solves are bitwise independent of the pool size;
  /// see UniformizationOptions::pool.  Must not point at a pool whose
  /// worker is executing this call (parallel_for would deadlock) — the
  /// sweep engine therefore fans points out over its pool *instead of*
  /// passing it down here.
  util::ThreadPool* pool = nullptr;

  /// Optional shared Poisson-window cache (CTMC engines only; thread-safe).
  /// Warm-starts each solve with the windows and truncation bounds computed
  /// by neighboring parameter points — see ctmc::PoissonCache for the rate
  /// quantization this implies.  run_sweep wires one per sweep
  /// automatically; set it explicitly to share windows across sweeps.
  ctmc::PoissonCache* poisson_cache = nullptr;

  /// Transient solver engine for the CTMC paths.  The study layer defaults
  /// to kAdaptive — the quasi-stationary plateau closure and rate ramp cut
  /// iteration counts ~3× on the figure workloads at a documented (and
  /// cross-checked) sub-tolerance cost; see docs/PERFORMANCE.md
  /// "Iteration counts".  Set kStandard for bit-compatibility with the
  /// historical solver, or kKrylov to cross-check with an independent
  /// numerical method.
  ctmc::TransientSolver solver = ctmc::TransientSolver::kAdaptive;

  /// Sweep-internal warm-start wiring (kAdaptive only): run_sweep points
  /// warm_cache at a per-sweep ctmc::WarmStartCache, keys each point by its
  /// structure group and time grid, and sets warm_publish on each group's
  /// cold build.  Callers outside the sweep engine can normally leave all
  /// three alone; see UniformizationOptions for the semantics.
  ctmc::WarmStartCache* warm_cache = nullptr;
  std::uint64_t warm_key = 0;
  bool warm_publish = false;

  // ---- robustness knobs (simulation engines; docs/ROBUSTNESS.md) ------
  // Forwarded into sim::TransientOptions; the CTMC engines ignore them
  // (their solves are short and deterministic — rerunning is cheaper than
  // checkpointing a uniformization).

  /// Absolute CI half-width floor (see TransientOptions::abs_half_width):
  /// rescues configurations whose estimated S(t) is still exactly 0, where
  /// the relative criterion can never fire.
  double abs_half_width = 0.0;
  /// Transient checkpoint file for this estimate ("" disables).
  std::string checkpoint_path;
  std::uint64_t checkpoint_every = 50'000;
  /// Resume from checkpoint_path; a mismatched checkpoint (different
  /// parameters, seed, or options) throws util::SnapshotError.
  bool resume = false;
  /// Cooperative cancellation flag (e.g. &util::stop_flag()).
  const std::atomic<bool>* stop = nullptr;
  /// Per-call wall-clock budget in seconds (0 = unlimited).
  double max_seconds = 0.0;
};

/// Thread-safe cache of parameter-independent CTMC structure, shared across
/// the points of a sweep.  The lumped engine keys on
/// Parameters::structural_fingerprint(); the full-SAN engine additionally
/// keys on the exact q_intrinsic bits because q is baked into its
/// instantaneous case weights.  A hit skips BFS exploration entirely and
/// rebuilds only the numeric rate entries.  Simulation engines ignore it.
class StudyCache {
 public:
  /// Cached full-SAN skeleton plus the unsafety reward vector over its
  /// states (both parameter-independent given the key).
  struct FullStructure {
    ctmc::StateSpace space;
    std::vector<double> reward;
  };

  std::shared_ptr<const LumpedStructure> find_lumped(
      std::uint64_t fingerprint) const;
  void store_lumped(std::shared_ptr<const LumpedStructure> structure);

  std::shared_ptr<const FullStructure> find_full(std::uint64_t key) const;
  void store_full(std::uint64_t key,
                  std::shared_ptr<const FullStructure> structure);

  /// Cache key for the full-SAN engine under `params`.
  static std::uint64_t full_key(const Parameters& params);

 private:
  mutable std::mutex mutex_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const LumpedStructure>>
      lumped_;
  std::unordered_map<std::uint64_t, std::shared_ptr<const FullStructure>>
      full_;
};

struct UnsafetyCurve {
  std::vector<double> times;      ///< hours
  std::vector<double> unsafety;   ///< S(t)
  /// CI half-widths (simulation engines only; 0 for CTMC engines).
  std::vector<double> half_width;
  std::uint64_t replications = 0;  ///< simulation engines only
  /// CTMC engines: matrix-vector products the transient solve performed
  /// (the unit the iteration-count work of docs/PERFORMANCE.md tracks;
  /// 0 for simulation engines).
  std::uint64_t solver_iterations = 0;
  bool converged = true;
  /// Simulation engines: the estimate stopped early because the
  /// cooperative stop flag was set (its progress is in the transient
  /// checkpoint, if one was configured).
  bool cancelled = false;
  /// Simulation engines: the per-call wall-clock budget ran out before
  /// convergence (progress checkpointed; resume to continue).
  bool timed_out = false;
  /// The estimate continued from a checkpoint file.
  bool resumed = false;
};

/// Computes S(t) at the given times (hours, strictly increasing).
UnsafetyCurve unsafety_curve(const Parameters& params,
                             const std::vector<double>& times,
                             const StudyOptions& options = {});

/// As above, consulting (and populating) `cache` for the CTMC engines.  On
/// return `*structure_cache_hit` (if non-null) says whether the state-space
/// structure came from the cache; a hit produces a curve equal to a cold
/// build for the same params.  Both pointers may be null; thread-safe for
/// concurrent calls sharing one cache.
UnsafetyCurve unsafety_curve(const Parameters& params,
                             const std::vector<double>& times,
                             const StudyOptions& options, StudyCache* cache,
                             bool* structure_cache_hit = nullptr);

/// Convenience: the paper's canonical trip-duration grid 2..10 h.
std::vector<double> trip_duration_grid();

}  // namespace ahs
