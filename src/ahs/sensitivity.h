// Parameter-sensitivity analysis of the unsafety measure.
//
// The paper's §4 is a sensitivity study carried out curve-by-curve; this
// module makes it quantitative: the *elasticity*  e_θ = ∂ln S(t) / ∂ln θ
// says how many percent S moves per percent change in parameter θ, putting
// every parameter on one comparable scale (e.g. e_λ ≈ 2 is the
// two-concurrent-failure law; e_μ ≈ −1 is the exposure-window effect).
// Computed by central finite differences on the exact lumped-CTMC engine,
// so there is no simulation noise to swamp small elasticities.
#pragma once

#include <string>
#include <vector>

#include "ahs/parameters.h"

namespace ahs {

/// Scalar parameters exposed to the sensitivity driver.
enum class ScalarParam {
  kLambda,      ///< base failure rate
  kQIntrinsic,  ///< intrinsic maneuver success probability
  kJoinRate,
  kLeaveRate,
  kChangeRate,
  kTransitRate,
  kMuAll,       ///< all maneuver rates scaled together
  kMuTieN,      ///< individual maneuver rates...
  kMuTie,
  kMuTieE,
  kMuGs,
  kMuCs,
  kMuAs,
};

const char* to_string(ScalarParam p);

/// Every ScalarParam in declaration order.
const std::vector<ScalarParam>& all_scalar_params();

/// Reads the parameter's current value (kMuAll reads the TIE-N rate as the
/// scale anchor).
double get_scalar(const Parameters& params, ScalarParam p);

/// Writes the parameter (kMuAll scales all maneuver rates by
/// value / current anchor).  Throws on out-of-domain values at validate().
void set_scalar(Parameters& params, ScalarParam p, double value);

struct Elasticity {
  ScalarParam param;
  double value;       ///< parameter value at the evaluation point
  double unsafety;    ///< S(t) at the evaluation point
  double elasticity;  ///< ∂ln S / ∂ln θ
};

struct SensitivityOptions {
  /// Relative finite-difference step.
  double h = 0.05;
  /// Worker threads for the up/down solves: 1 = sequential (default),
  /// 0 = hardware concurrency.  The result is identical for any value —
  /// each solve is independent and lands in a slot indexed by parameter.
  unsigned threads = 1;
};

/// Elasticities of S(t) with respect to each parameter in `params`, by
/// central differences with relative step `options.h` (each parameter costs
/// two lumped-CTMC solves; perturbed sets reuse the base exploration
/// whenever the perturbation preserves the structural fingerprint, and the
/// 2·|which| solves fan out over options.threads).
/// `params.q_intrinsic == 1` pins q at its boundary, so its elasticity is
/// computed one-sidedly there.
std::vector<Elasticity> unsafety_elasticities(
    const Parameters& params, double t,
    const std::vector<ScalarParam>& which,
    const SensitivityOptions& options);

/// Back-compat shims taking the step alone (sequential evaluation).
std::vector<Elasticity> unsafety_elasticities(
    const Parameters& params, double t,
    const std::vector<ScalarParam>& which, double h = 0.05);

/// All parameters.
std::vector<Elasticity> unsafety_elasticities(const Parameters& params,
                                              double t, double h = 0.05);

}  // namespace ahs
