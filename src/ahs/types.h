// Core vocabulary of the paper's model: failure modes FM1–FM6 (Table 1),
// severity classes (A3 > A2 > A1 > B2 = B1 > C), recovery maneuvers, and the
// escalation chain of Fig 2.
//
// Maneuvers are ordered by escalation *stage*: when a maneuver fails the
// vehicle attempts the next (higher-priority) one, ending at Aided Stop;
// an Aided Stop failure leaves the vehicle as a free agent (v_KO).
#pragma once

#include <array>
#include <string>

namespace ahs {

/// The six failure modes of Table 1.
enum class FailureMode { kFM1 = 0, kFM2, kFM3, kFM4, kFM5, kFM6 };

inline constexpr std::array<FailureMode, 6> kAllFailureModes = {
    FailureMode::kFM1, FailureMode::kFM2, FailureMode::kFM3,
    FailureMode::kFM4, FailureMode::kFM5, FailureMode::kFM6};

/// Severity classes in decreasing criticality: A (vehicle must stop on the
/// highway), B (vehicle exits with assistance), C (vehicle exits normally).
enum class SeverityClass { kA = 0, kB, kC };

/// Recovery maneuvers ordered by escalation stage (Fig 2): a failed
/// maneuver escalates to the next enumerator.
enum class Maneuver {
  kTakeImmediateExitNormal = 0,  ///< TIE-N (class C)
  kTakeImmediateExit = 1,        ///< TIE   (class B1)
  kTakeImmediateExitEscorted = 2,///< TIE-E (class B2)
  kGentleStop = 3,               ///< GS    (class A1)
  kCrashStop = 4,                ///< CS    (class A2)
  kAidedStop = 5,                ///< AS    (class A3)
};

inline constexpr std::array<Maneuver, 6> kAllManeuvers = {
    Maneuver::kTakeImmediateExitNormal,   Maneuver::kTakeImmediateExit,
    Maneuver::kTakeImmediateExitEscorted, Maneuver::kGentleStop,
    Maneuver::kCrashStop,                 Maneuver::kAidedStop};

inline constexpr std::size_t kNumFailureModes = 6;
inline constexpr std::size_t kNumManeuvers = 6;

/// One row of Table 1.
struct FailureModeInfo {
  FailureMode mode;
  const char* name;            ///< "FM1" ...
  const char* example_cause;   ///< "No brakes" ...
  const char* severity_label;  ///< "A3", "A2", "A1", "B2", "B1", "C"
  SeverityClass severity;
  Maneuver maneuver;           ///< associated recovery maneuver
  double rate_multiplier;      ///< λ_i / λ  (§4.1: 1, 2, 2, 2, 3, 4)
};

/// Table 1 with the §4.1 rate multipliers.
const std::array<FailureModeInfo, kNumFailureModes>& failure_mode_table();

/// Row of Table 1 for one failure mode.
const FailureModeInfo& info(FailureMode fm);

/// Severity class of the failure mode a maneuver stage recovers — used for
/// the Table 2 accounting of ongoing maneuvers (escalation re-classes a
/// vehicle's contribution: a failed TIE-E escalates to GS, class B → A).
SeverityClass maneuver_class(Maneuver m);

/// Maneuver the given failure mode triggers (Table 1).
Maneuver maneuver_for(FailureMode fm);

/// Next maneuver in the escalation chain; AidedStop has no successor
/// (returns false).
bool next_maneuver(Maneuver m, Maneuver& out);

/// Escalation-stage index (0 = TIE-N lowest ... 5 = AS highest priority).
inline int stage(Maneuver m) { return static_cast<int>(m); }

const char* to_string(FailureMode fm);
const char* to_string(SeverityClass c);
const char* to_string(Maneuver m);
/// Short maneuver label as the paper writes it ("TIE-N", "GS", ...).
const char* short_name(Maneuver m);

}  // namespace ahs
