#include "ahs/system_model.h"

#include "ahs/configuration_model.h"
#include "ahs/dynamicity_model.h"
#include "ahs/model_common.h"
#include "ahs/severity_model.h"
#include "ahs/vehicle_model.h"
#include "san/rewards.h"

namespace ahs {

san::CompositionPtr build_system_composition(const Parameters& params) {
  params.validate();
  const auto& shared = shared_place_names();
  auto vehicles =
      san::Rep("vehicles", san::Leaf(build_vehicle_model(params)),
               static_cast<std::uint32_t>(params.capacity()), shared);
  return san::Join("ahs",
                   {vehicles, san::Leaf(build_configuration_model(params)),
                    san::Leaf(build_dynamicity_model(params)),
                    san::Leaf(build_severity_model(params))},
                   shared);
}

san::FlatModel build_system_model(const Parameters& params) {
  return san::flatten(build_system_composition(params));
}

san::RewardFn unsafety_reward(const san::FlatModel& model) {
  return san::indicator_nonzero(model, "KO_total");
}

}  // namespace ahs
