#include "ahs/study.h"

#include "ahs/lumped.h"
#include "ahs/system_model.h"
#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "sim/transient.h"
#include "util/error.h"
#include "util/string_util.h"

namespace ahs {

const char* to_string(Engine e) {
  switch (e) {
    case Engine::kLumpedCtmc: return "lumped-ctmc";
    case Engine::kSimulation: return "simulation";
    case Engine::kSimulationIS: return "simulation-is";
    case Engine::kFullCtmc: return "full-ctmc";
  }
  return "?";
}

Engine parse_engine(const std::string& s) {
  const std::string u = util::to_lower(s);
  if (u == "lumped-ctmc" || u == "lumped") return Engine::kLumpedCtmc;
  if (u == "simulation" || u == "sim") return Engine::kSimulation;
  if (u == "simulation-is" || u == "sim-is" || u == "is")
    return Engine::kSimulationIS;
  if (u == "full-ctmc" || u == "full") return Engine::kFullCtmc;
  throw util::PreconditionError(
      "unknown engine '" + s +
      "' (expected lumped-ctmc, simulation, simulation-is, or full-ctmc)");
}

std::vector<double> trip_duration_grid() { return {2, 4, 6, 8, 10}; }

namespace {

UnsafetyCurve run_lumped(const Parameters& params,
                         const std::vector<double>& times) {
  LumpedModel model(params);
  UnsafetyCurve curve;
  curve.times = times;
  curve.unsafety = model.unsafety(times);
  curve.half_width.assign(times.size(), 0.0);
  return curve;
}

UnsafetyCurve run_full_ctmc(const Parameters& params,
                            const std::vector<double>& times,
                            const StudyOptions& options) {
  const san::FlatModel model = build_system_model(params);
  const std::size_t ko = model.place_index("KO_total");
  const std::uint32_t ko_slot = model.place_offset(ko);

  ctmc::StateSpaceOptions ss_opts;
  ss_opts.max_states = options.max_states;
  ss_opts.absorbing = [ko_slot](std::span<const std::int32_t> m) {
    return m[ko_slot] > 0;
  };
  // Pure statistics counters: unbounded, write-only — project them out so
  // the state space stays finite (exact lumping).
  ss_opts.ignore_places = {"ext_id", "safe_exits", "ko_exits"};
  const ctmc::StateSpace space = ctmc::build_state_space(model, ss_opts);
  const std::vector<double> reward = space.state_rewards(
      [ko_slot](std::span<const std::int32_t> m) {
        return m[ko_slot] > 0 ? 1.0 : 0.0;
      });

  ctmc::UniformizationOptions u_opts;
  u_opts.epsilon = 1e-14;
  const auto sol = ctmc::solve_transient(space.chain, reward, times, u_opts);

  UnsafetyCurve curve;
  curve.times = times;
  curve.unsafety = sol.expected_reward;
  curve.half_width.assign(times.size(), 0.0);
  return curve;
}

UnsafetyCurve run_simulation(const Parameters& params,
                             const std::vector<double>& times,
                             const StudyOptions& options, bool importance) {
  const san::FlatModel model = build_system_model(params);
  const san::RewardFn reward = unsafety_reward(model);

  sim::BiasPlan bias;
  if (importance) {
    bias.boost = options.failure_boost;
    for (std::size_t i = 1; i <= kNumFailureModes; ++i)
      bias.boosted.insert("L" + std::to_string(i));
    // Push each maneuver's failure case toward fail_case_bias.
    for (std::size_t k = 1; k <= kNumManeuvers; ++k)
      bias.case_bias["M" + std::to_string(k)] = {
          1.0 - options.fail_case_bias, options.fail_case_bias};
  }

  sim::TransientOptions t_opts;
  t_opts.time_points = times;
  t_opts.min_replications = options.min_replications;
  t_opts.max_replications = options.max_replications;
  t_opts.rel_half_width = options.rel_half_width;
  t_opts.confidence = options.confidence;
  t_opts.seed = options.seed;
  t_opts.absorbing_indicator = true;
  t_opts.bias = importance ? &bias : nullptr;

  const sim::TransientResult result =
      sim::estimate_transient(model, reward, t_opts);

  UnsafetyCurve curve;
  curve.times = times;
  for (const auto& ci : result.estimates) {
    curve.unsafety.push_back(ci.mean);
    curve.half_width.push_back(ci.half_width);
  }
  curve.replications = result.replications;
  curve.converged = result.converged;
  return curve;
}

}  // namespace

UnsafetyCurve unsafety_curve(const Parameters& params,
                             const std::vector<double>& times,
                             const StudyOptions& options) {
  params.validate();
  AHS_REQUIRE(!times.empty(), "need at least one time point");
  switch (options.engine) {
    case Engine::kLumpedCtmc:
      return run_lumped(params, times);
    case Engine::kFullCtmc:
      return run_full_ctmc(params, times, options);
    case Engine::kSimulation:
      return run_simulation(params, times, options, false);
    case Engine::kSimulationIS:
      return run_simulation(params, times, options, true);
  }
  throw util::InvariantError("unknown engine");
}

}  // namespace ahs
