#include "ahs/study.h"

#include <bit>
#include <utility>

#include "ahs/lumped.h"
#include "ahs/system_model.h"
#include "ctmc/state_space.h"
#include "ctmc/uniformization.h"
#include "sim/transient.h"
#include "util/error.h"
#include "util/metrics.h"
#include "util/spans.h"
#include "util/string_util.h"

namespace ahs {

const char* to_string(Engine e) {
  switch (e) {
    case Engine::kLumpedCtmc: return "lumped-ctmc";
    case Engine::kSimulation: return "simulation";
    case Engine::kSimulationIS: return "simulation-is";
    case Engine::kFullCtmc: return "full-ctmc";
  }
  return "?";
}

Engine parse_engine(const std::string& s) {
  const std::string u = util::to_lower(s);
  if (u == "lumped-ctmc" || u == "lumped") return Engine::kLumpedCtmc;
  if (u == "simulation" || u == "sim") return Engine::kSimulation;
  if (u == "simulation-is" || u == "sim-is" || u == "is")
    return Engine::kSimulationIS;
  if (u == "full-ctmc" || u == "full") return Engine::kFullCtmc;
  throw util::PreconditionError(
      "unknown engine '" + s +
      "' (expected lumped-ctmc, simulation, simulation-is, or full-ctmc)");
}

std::vector<double> trip_duration_grid() { return {2, 4, 6, 8, 10}; }

std::shared_ptr<const LumpedStructure> StudyCache::find_lumped(
    std::uint64_t fingerprint) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = lumped_.find(fingerprint);
  return it == lumped_.end() ? nullptr : it->second;
}

void StudyCache::store_lumped(
    std::shared_ptr<const LumpedStructure> structure) {
  const std::lock_guard<std::mutex> lock(mutex_);
  lumped_.emplace(structure->fingerprint, std::move(structure));
}

std::shared_ptr<const StudyCache::FullStructure> StudyCache::find_full(
    std::uint64_t key) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = full_.find(key);
  return it == full_.end() ? nullptr : it->second;
}

void StudyCache::store_full(std::uint64_t key,
                            std::shared_ptr<const FullStructure> structure) {
  const std::lock_guard<std::mutex> lock(mutex_);
  full_.emplace(key, std::move(structure));
}

std::uint64_t StudyCache::full_key(const Parameters& params) {
  // The full-SAN maneuver activities put q_intrinsic in their case weights
  // (success vs escalation), so two parameter sets share a skeleton only if
  // q matches exactly — rebuild_rates rescales rates, not case splits.
  std::uint64_t h = params.structural_fingerprint();
  h ^= std::bit_cast<std::uint64_t>(params.q_intrinsic);
  h *= 1099511628211ull;
  return h;
}

namespace {

/// Records a StudyCache lookup under "ahs.study.structure_cache_{hits,misses}"
/// when a process-wide registry is attached.
void count_cache_lookup(bool hit) {
  if (util::MetricsRegistry* reg = util::MetricsRegistry::global())
    reg->counter(hit ? "ahs.study.structure_cache_hits"
                     : "ahs.study.structure_cache_misses")
        .inc();
}

UnsafetyCurve run_lumped(const Parameters& params,
                         const std::vector<double>& times,
                         const StudyOptions& options, StudyCache* cache,
                         bool* structure_cache_hit) {
  AHS_SPAN("study.lumped_ctmc");
  std::shared_ptr<const LumpedStructure> structure;
  if (cache) {
    structure = cache->find_lumped(params.structural_fingerprint());
    count_cache_lookup(structure != nullptr);
  }
  if (structure_cache_hit) *structure_cache_hit = structure != nullptr;

  LumpedModel model =
      structure ? LumpedModel(params, structure) : LumpedModel(params);
  ctmc::UniformizationOptions u_opts;
  u_opts.pool = options.pool;
  u_opts.poisson_cache = options.poisson_cache;
  u_opts.solver = options.solver;
  u_opts.warm_cache = options.warm_cache;
  u_opts.warm_key = options.warm_key;
  u_opts.warm_publish = options.warm_publish;
  UnsafetyCurve curve;
  curve.times = times;
  curve.unsafety = model.unsafety(times, u_opts, &curve.solver_iterations);
  curve.half_width.assign(times.size(), 0.0);
  if (cache && !structure) cache->store_lumped(model.structure());
  return curve;
}

UnsafetyCurve run_full_ctmc(const Parameters& params,
                            const std::vector<double>& times,
                            const StudyOptions& options, StudyCache* cache,
                            bool* structure_cache_hit) {
  AHS_SPAN("study.full_ctmc");
  const san::FlatModel model = build_system_model(params);
  const std::size_t ko = model.place_index("KO_total");
  const std::uint32_t ko_slot = model.place_offset(ko);

  std::shared_ptr<const StudyCache::FullStructure> cached;
  if (cache) {
    cached = cache->find_full(StudyCache::full_key(params));
    count_cache_lookup(cached != nullptr);
  }
  if (structure_cache_hit) *structure_cache_hit = cached != nullptr;

  ctmc::MarkovChain chain;
  const std::vector<double>* reward = nullptr;
  std::vector<double> cold_reward;
  if (cached) {
    // Same skeleton, new rates: one pass over the cached arcs, no BFS.
    chain = ctmc::rebuild_rates(model, cached->space);
    reward = &cached->reward;
  } else {
    ctmc::StateSpaceOptions ss_opts;
    ss_opts.max_states = options.max_states;
    ss_opts.capture_structure = cache != nullptr;
    ss_opts.absorbing = [ko_slot](std::span<const std::int32_t> m) {
      return m[ko_slot] > 0;
    };
    // Pure statistics counters: unbounded, write-only — project them out so
    // the state space stays finite (exact lumping).
    ss_opts.ignore_places = {"ext_id", "safe_exits", "ko_exits"};
    ctmc::StateSpace space = ctmc::build_state_space(model, ss_opts);
    cold_reward = space.state_rewards(
        [ko_slot](std::span<const std::int32_t> m) {
          return m[ko_slot] > 0 ? 1.0 : 0.0;
        });
    chain = space.chain;
    reward = &cold_reward;
    if (cache) {
      auto entry = std::make_shared<StudyCache::FullStructure>();
      entry->space = std::move(space);
      entry->reward = cold_reward;
      cache->store_full(StudyCache::full_key(params), std::move(entry));
    }
  }

  ctmc::UniformizationOptions u_opts;
  u_opts.epsilon = 1e-14;
  u_opts.pool = options.pool;
  u_opts.poisson_cache = options.poisson_cache;
  u_opts.solver = options.solver;
  u_opts.warm_cache = options.warm_cache;
  u_opts.warm_key = options.warm_key;
  u_opts.warm_publish = options.warm_publish;
  const auto sol = ctmc::solve_transient(chain, *reward, times, u_opts);

  UnsafetyCurve curve;
  curve.times = times;
  curve.unsafety = sol.expected_reward;
  curve.half_width.assign(times.size(), 0.0);
  curve.solver_iterations = sol.total_iterations;
  return curve;
}

UnsafetyCurve run_simulation(const Parameters& params,
                             const std::vector<double>& times,
                             const StudyOptions& options, bool importance) {
  AHS_SPAN("study.simulation");
  const san::FlatModel model = build_system_model(params);
  const san::RewardFn reward = unsafety_reward(model);

  sim::BiasPlan bias;
  if (importance) {
    bias.boost = options.failure_boost;
    for (std::size_t i = 1; i <= kNumFailureModes; ++i)
      bias.boosted.insert("L" + std::to_string(i));
    // Push each maneuver's failure case toward fail_case_bias.
    for (std::size_t k = 1; k <= kNumManeuvers; ++k)
      bias.case_bias["M" + std::to_string(k)] = {
          1.0 - options.fail_case_bias, options.fail_case_bias};
  }

  sim::TransientOptions t_opts;
  t_opts.time_points = times;
  t_opts.min_replications = options.min_replications;
  t_opts.max_replications = options.max_replications;
  t_opts.rel_half_width = options.rel_half_width;
  t_opts.abs_half_width = options.abs_half_width;
  t_opts.confidence = options.confidence;
  t_opts.seed = options.seed;
  t_opts.batch_size = options.batch_size;
  t_opts.absorbing_indicator = true;
  t_opts.bias = importance ? &bias : nullptr;
  t_opts.checkpoint_path = options.checkpoint_path;
  t_opts.checkpoint_every = options.checkpoint_every;
  t_opts.resume = options.resume;
  t_opts.model_fingerprint = params.structural_fingerprint();
  t_opts.stop = options.stop;
  t_opts.max_seconds = options.max_seconds;

  const sim::TransientResult result =
      sim::estimate_transient(model, reward, t_opts);

  UnsafetyCurve curve;
  curve.times = times;
  for (const auto& ci : result.estimates) {
    curve.unsafety.push_back(ci.mean);
    curve.half_width.push_back(ci.half_width);
  }
  curve.replications = result.replications;
  curve.converged = result.converged;
  curve.cancelled = result.stop_reason == sim::TransientStop::kCancelled;
  curve.timed_out = result.stop_reason == sim::TransientStop::kTimedOut;
  curve.resumed = result.resumed;
  return curve;
}

}  // namespace

UnsafetyCurve unsafety_curve(const Parameters& params,
                             const std::vector<double>& times,
                             const StudyOptions& options) {
  return unsafety_curve(params, times, options, nullptr, nullptr);
}

UnsafetyCurve unsafety_curve(const Parameters& params,
                             const std::vector<double>& times,
                             const StudyOptions& options, StudyCache* cache,
                             bool* structure_cache_hit) {
  params.validate();
  AHS_REQUIRE(!times.empty(), "need at least one time point");
  if (structure_cache_hit) *structure_cache_hit = false;
  switch (options.engine) {
    case Engine::kLumpedCtmc:
      return run_lumped(params, times, options, cache, structure_cache_hit);
    case Engine::kFullCtmc:
      return run_full_ctmc(params, times, options, cache,
                           structure_cache_hit);
    case Engine::kSimulation:
      return run_simulation(params, times, options, false);
    case Engine::kSimulationIS:
      return run_simulation(params, times, options, true);
  }
  throw util::InvariantError("unknown engine");
}

}  // namespace ahs
