#include "ahs/configuration_model.h"

namespace ahs {

std::shared_ptr<san::AtomicModel> build_configuration_model(
    const Parameters& params) {
  params.validate();
  auto model = std::make_shared<san::AtomicModel>("configuration");

  // The paper's start_id token enables the initialization cascade; here the
  // cascade budget is explicit: init_count starts at the full capacity
  // (num_platoons * n; the paper's 2n) and id_trigger fires once per
  // initial vehicle, then switches to serving IN tokens.
  const san::PlaceToken init_count =
      model->place("init_count", params.capacity());
  const san::PlaceToken in = model->place("IN");
  const san::PlaceToken ext_id = model->place("ext_id");
  const san::PlaceToken joining = model->place("joining");
  const san::PlaceToken placing = model->place("placing");

  // Checked declarations (see vehicle_model.cpp for the policy): the
  // cascade budget and IN are bounded by the vehicle-count invariant
  // init_count + IN + OUT + joining + #active = capacity; ext_id counts
  // identities handed out and is genuinely unbounded, so it stays
  // undeclared.  Shared-place values must agree with the other submodels
  // (composition rejects mismatches).
  model->capacity(init_count, params.capacity())
      .capacity(in, params.capacity())
      .capacity(joining, 1)
      .capacity(placing, params.capacity());

  model->instant_activity("id_trigger")
      .priority(8)
      .reads({joining, placing, init_count, in})
      .writes({init_count, in, ext_id, joining})
      .input_gate(
          [init_count, in, joining, placing](const san::MarkingRef& m) {
            // Serialize: one vehicle at a time through the claim/JP
            // pipeline.
            if (m.get(joining) > 0 || m.get(placing) > 0) return false;
            return m.get(init_count) > 0 || m.get(in) > 0;
          },
          [init_count, in, ext_id, joining](const san::MarkingRef& m) {
            if (m.get(init_count) > 0) m.add(init_count, -1);
            else m.add(in, -1);
            m.add(ext_id, +1);
            m.set(joining, 1);
          });

  return model;
}

}  // namespace ahs
