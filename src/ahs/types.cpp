#include "ahs/types.h"

#include "util/error.h"

namespace ahs {

const std::array<FailureModeInfo, kNumFailureModes>& failure_mode_table() {
  // Table 1 of the paper; rate multipliers from §4.1:
  //   λ6 = 4λ, λ5 = 3λ, λ4 = 2λ, λ3 = 2λ, λ2 = 2λ, λ1 = λ.
  static const std::array<FailureModeInfo, kNumFailureModes> kTable = {{
      {FailureMode::kFM1, "FM1", "No brakes", "A3", SeverityClass::kA,
       Maneuver::kAidedStop, 1.0},
      {FailureMode::kFM2, "FM2", "Inability to detect vehicles in adjacent lanes",
       "A2", SeverityClass::kA, Maneuver::kCrashStop, 2.0},
      {FailureMode::kFM3, "FM3", "Inter-vehicle communication failure", "A1",
       SeverityClass::kA, Maneuver::kGentleStop, 2.0},
      {FailureMode::kFM4, "FM4", "Transmission failure", "B2",
       SeverityClass::kB, Maneuver::kTakeImmediateExitEscorted, 2.0},
      {FailureMode::kFM5, "FM5", "Reduced steering capability", "B1",
       SeverityClass::kB, Maneuver::kTakeImmediateExit, 3.0},
      {FailureMode::kFM6, "FM6", "Single failure in a redundant sensor set",
       "C", SeverityClass::kC, Maneuver::kTakeImmediateExitNormal, 4.0},
  }};
  return kTable;
}

const FailureModeInfo& info(FailureMode fm) {
  return failure_mode_table()[static_cast<std::size_t>(fm)];
}

SeverityClass maneuver_class(Maneuver m) {
  switch (m) {
    case Maneuver::kTakeImmediateExitNormal:
      return SeverityClass::kC;
    case Maneuver::kTakeImmediateExit:
    case Maneuver::kTakeImmediateExitEscorted:
      return SeverityClass::kB;
    case Maneuver::kGentleStop:
    case Maneuver::kCrashStop:
    case Maneuver::kAidedStop:
      return SeverityClass::kA;
  }
  throw util::InvariantError("unknown maneuver");
}

Maneuver maneuver_for(FailureMode fm) { return info(fm).maneuver; }

bool next_maneuver(Maneuver m, Maneuver& out) {
  if (m == Maneuver::kAidedStop) return false;
  out = static_cast<Maneuver>(static_cast<int>(m) + 1);
  return true;
}

const char* to_string(FailureMode fm) { return info(fm).name; }

const char* to_string(SeverityClass c) {
  switch (c) {
    case SeverityClass::kA: return "A";
    case SeverityClass::kB: return "B";
    case SeverityClass::kC: return "C";
  }
  return "?";
}

const char* to_string(Maneuver m) {
  switch (m) {
    case Maneuver::kTakeImmediateExitNormal: return "Take Immediate Exit-Normal";
    case Maneuver::kTakeImmediateExit: return "Take Immediate Exit";
    case Maneuver::kTakeImmediateExitEscorted: return "Take Immediate Exit-Escorted";
    case Maneuver::kGentleStop: return "Gentle Stop";
    case Maneuver::kCrashStop: return "Crash Stop";
    case Maneuver::kAidedStop: return "Aided Stop";
  }
  return "?";
}

const char* short_name(Maneuver m) {
  switch (m) {
    case Maneuver::kTakeImmediateExitNormal: return "TIE-N";
    case Maneuver::kTakeImmediateExit: return "TIE";
    case Maneuver::kTakeImmediateExitEscorted: return "TIE-E";
    case Maneuver::kGentleStop: return "GS";
    case Maneuver::kCrashStop: return "CS";
    case Maneuver::kAidedStop: return "AS";
  }
  return "?";
}

}  // namespace ahs
