#include "ahs/severity.h"

#include "util/error.h"

namespace ahs {

int catastrophic_situation(const SeverityCounts& s) {
  AHS_REQUIRE(s.a >= 0 && s.b >= 0 && s.c >= 0,
              "severity counts must be non-negative");
  // ST1: at least two Class A failures.
  if (s.a >= 2) return 1;
  // ST2: at least one Class A AND {two B, or one B and one C, or three C}.
  if (s.a >= 1 &&
      (s.b >= 2 || (s.b >= 1 && s.c >= 1) || s.c >= 3))
    return 2;
  // ST3: at least four failures of class B or C.
  if (s.b + s.c >= 4) return 3;
  return 0;
}

bool is_catastrophic(const SeverityCounts& s) {
  return catastrophic_situation(s) != 0;
}

std::vector<SeverityCounts> safe_profiles(int max_count) {
  std::vector<SeverityCounts> out;
  for (int a = 0; a <= max_count; ++a)
    for (int b = 0; b <= max_count; ++b)
      for (int c = 0; c <= max_count; ++c) {
        const SeverityCounts s{a, b, c};
        if (!is_catastrophic(s)) out.push_back(s);
      }
  return out;
}

}  // namespace ahs
