// The Dynamicity SAN submodel (Fig 7): failure-free highway dynamics —
// vehicles joining (Join → IN), leaving each platoon (leave1/leave2, with
// platoon-2 leavers designated for the transit phase), switching platoons
// (ch1/ch2), and the instantaneous JP placement choosing a platoon for a
// newly claimed vehicle (50/50 when both have room, as in the paper).
#pragma once

#include <memory>

#include "ahs/parameters.h"
#include "san/atomic_model.h"

namespace ahs {

std::shared_ptr<san::AtomicModel> build_dynamicity_model(
    const Parameters& params);

}  // namespace ahs
