#include "ahs/sweep.h"

#include <chrono>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_set>

#include "ctmc/uniformization.h"
#include "util/error.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/snapshot.h"
#include "util/spans.h"
#include "util/string_util.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace ahs {

const char* to_string(PointOutcome o) {
  switch (o) {
    case PointOutcome::kComputed: return "computed";
    case PointOutcome::kRestored: return "restored";
    case PointOutcome::kDegraded: return "degraded";
    case PointOutcome::kSkipped: return "skipped";
  }
  return "?";
}

std::size_t SweepResult::degraded_count() const {
  std::size_t n = 0;
  for (const PointOutcome o : outcome)
    if (o == PointOutcome::kDegraded) ++n;
  return n;
}

bool SweepResult::complete() const {
  for (const PointOutcome o : outcome)
    if (o != PointOutcome::kComputed && o != PointOutcome::kRestored)
      return false;
  return !outcome.empty() || curves.empty();
}

namespace {

std::string axis_label(const GridAxis& axis, double v) {
  return axis.name + "=" + util::format_sci(v);
}

/// The key under which two points share explored structure, or 0 for
/// engines with no structure cache (each such point is its own group).
std::uint64_t group_key(const Parameters& params, Engine engine) {
  switch (engine) {
    case Engine::kLumpedCtmc: return params.structural_fingerprint();
    case Engine::kFullCtmc: return StudyCache::full_key(params);
    case Engine::kSimulation:
    case Engine::kSimulationIS: return 0;
  }
  return 0;
}

/// Folds every *value* field of a Parameters into `h`.  The structural
/// fingerprint alone is not an identity for a sweep point — points of one
/// sweep usually share structure and differ only in rate values — so the
/// durable result files hash the full numeric parameter set.
std::uint64_t hash_params(std::uint64_t h, const Parameters& p) {
  h = util::hash_mix(h, static_cast<std::uint64_t>(p.max_per_platoon));
  h = util::hash_mix(h, static_cast<std::uint64_t>(p.num_platoons));
  h = util::hash_mix(h, p.base_failure_rate);
  for (double m : p.rate_multipliers) h = util::hash_mix(h, m);
  for (bool e : p.failure_mode_enabled)
    h = util::hash_mix(h, static_cast<std::uint64_t>(e));
  for (double r : p.maneuver_rates) h = util::hash_mix(h, r);
  h = util::hash_mix(h, static_cast<std::uint64_t>(p.maneuver_time_model));
  h = util::hash_mix(h, p.join_rate);
  h = util::hash_mix(h, p.leave_rate);
  h = util::hash_mix(h, p.change_rate);
  h = util::hash_mix(h, p.transit_rate);
  h = util::hash_mix(h, p.q_intrinsic);
  h = util::hash_mix(h, static_cast<std::uint64_t>(p.max_transit));
  h = util::hash_mix(h, static_cast<std::uint64_t>(p.strategy));
  h = util::hash_mix(h, static_cast<std::uint64_t>(p.adjacency_radius));
  return h;
}

std::string point_path(const std::string& dir, std::size_t index,
                       const char* suffix) {
  return dir + "/point_" + std::to_string(index) + suffix;
}

}  // namespace

std::uint64_t point_identity_hash(const Parameters& params,
                                  const std::vector<double>& times,
                                  const StudyOptions& study) {
  std::uint64_t h = 0;
  h = hash_params(h, params);
  for (double t : times) h = util::hash_mix(h, t);
  h = util::hash_mix(h, static_cast<std::uint64_t>(times.size()));
  h = util::hash_mix(h, static_cast<std::uint64_t>(study.engine));
  h = util::hash_mix(h, static_cast<std::uint64_t>(study.solver));
  h = util::hash_mix(h, study.min_replications);
  h = util::hash_mix(h, study.max_replications);
  h = util::hash_mix(h, study.rel_half_width);
  h = util::hash_mix(h, study.abs_half_width);
  h = util::hash_mix(h, study.confidence);
  h = util::hash_mix(h, study.seed);
  h = util::hash_mix(h, study.failure_boost);
  h = util::hash_mix(h, study.fail_case_bias);
  h = util::hash_mix(h, static_cast<std::uint64_t>(study.max_states));
  return h;
}

std::uint64_t point_option_hash(std::size_t index, const SweepPoint& point,
                                const std::vector<double>& times,
                                const StudyOptions& study) {
  std::uint64_t h = 0;
  h = util::hash_mix(h, static_cast<std::uint64_t>(index));
  h = util::hash_mix(h, point.label);
  h = util::hash_mix(h, point_identity_hash(point.params, times, study));
  return h;
}

util::SnapshotHeader point_result_header(std::size_t index,
                                         const SweepPoint& point,
                                         const std::vector<double>& times,
                                         const StudyOptions& study) {
  return util::SnapshotHeader{
      "sweep-point", point.params.structural_fingerprint(), study.seed,
      point_option_hash(index, point, times, study)};
}

std::string encode_curve(const UnsafetyCurve& curve) {
  std::ostringstream os;
  os << curve.times.size() << "\n";
  for (double t : curve.times) os << util::encode_double(t) << " ";
  os << "\n";
  for (double u : curve.unsafety) os << util::encode_double(u) << " ";
  os << "\n";
  for (double hw : curve.half_width) os << util::encode_double(hw) << " ";
  os << "\n"
     << curve.replications << " " << (curve.converged ? 1 : 0) << " "
     << curve.solver_iterations << "\n";
  return os.str();
}

UnsafetyCurve decode_curve(const std::string& payload) {
  util::TokenReader in(payload);
  UnsafetyCurve curve;
  const std::uint64_t k = in.next_u64();
  curve.times.reserve(k);
  curve.unsafety.reserve(k);
  curve.half_width.reserve(k);
  for (std::uint64_t i = 0; i < k; ++i) curve.times.push_back(in.next_f64());
  for (std::uint64_t i = 0; i < k; ++i)
    curve.unsafety.push_back(in.next_f64());
  for (std::uint64_t i = 0; i < k; ++i)
    curve.half_width.push_back(in.next_f64());
  curve.replications = in.next_u64();
  curve.converged = in.next_u64() != 0;
  curve.solver_iterations = in.next_u64();
  return curve;
}

namespace {

/// Payload of <checkpoint_dir>/warm_starts.cache: every warm-start shape
/// the sweep's cold builds have published so far, bitwise-exact doubles.
/// A resumed sweep preloads these so followers of *restored* cold builds
/// still validate against the exact shape the interrupted run published.
std::string encode_warm_entries(const ctmc::WarmStartCache& cache) {
  std::ostringstream os;
  const auto entries = cache.entries();
  os << entries.size() << "\n";
  for (const auto& [key, entry] : entries) {
    os << key << " " << entry->fired_at << " " << entry->shape.size() << "\n";
    for (double s : entry->shape) os << util::encode_double(s) << " ";
    os << "\n";
  }
  return os.str();
}

std::size_t decode_warm_entries(const std::string& payload,
                                ctmc::WarmStartCache* cache) {
  util::TokenReader in(payload);
  const std::uint64_t count = in.next_u64();
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t key = in.next_u64();
    auto entry = std::make_shared<ctmc::WarmStart>();
    entry->fired_at = in.next_u64();
    const std::uint64_t n = in.next_u64();
    entry->shape.reserve(n);
    for (std::uint64_t s = 0; s < n; ++s)
      entry->shape.push_back(in.next_f64());
    cache->store(key, std::move(entry));
  }
  return count;
}

}  // namespace

std::vector<SweepPoint> make_grid(const Parameters& base,
                                  const GridAxis& axis) {
  AHS_REQUIRE(axis.set != nullptr, "grid axis needs a setter");
  std::vector<SweepPoint> points;
  points.reserve(axis.values.size());
  for (double v : axis.values) {
    SweepPoint p{axis_label(axis, v), base};
    axis.set(p.params, v);
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<SweepPoint> make_grid(const Parameters& base,
                                  const GridAxis& outer,
                                  const GridAxis& inner) {
  AHS_REQUIRE(outer.set != nullptr && inner.set != nullptr,
              "grid axes need setters");
  std::vector<SweepPoint> points;
  points.reserve(outer.values.size() * inner.values.size());
  for (double vo : outer.values) {
    for (double vi : inner.values) {
      SweepPoint p{axis_label(outer, vo) + "," + axis_label(inner, vi),
                   base};
      outer.set(p.params, vo);
      inner.set(p.params, vi);
      points.push_back(std::move(p));
    }
  }
  return points;
}

SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const std::vector<double>& times,
                      const SweepOptions& options) {
  AHS_REQUIRE(options.study.pool == nullptr,
              "SweepOptions::study.pool must be null — the sweep "
              "parallelizes across points (see StudyOptions::pool)");
  AHS_REQUIRE(options.max_attempts >= 1, "max_attempts must be >= 1");
  AHS_SPAN("sweep.run");
  const auto sweep_start = std::chrono::steady_clock::now();

  const bool persisting = !options.checkpoint_dir.empty();
  if (persisting)
    std::filesystem::create_directories(options.checkpoint_dir);

  // Sweep telemetry ("ahs.sweep.*"): per-point wall time, the cache
  // hit/miss split, and the robustness counters (restored/retried/degraded
  // points), aggregated under the process-wide registry if attached.
  util::MetricsRegistry* reg = util::MetricsRegistry::global();
  util::Counter tm_points, tm_hits, tm_misses, tm_restored, tm_retries,
      tm_degraded;
  util::HistogramHandle tm_point_seconds;
  if (reg != nullptr) {
    tm_points = reg->counter("ahs.sweep.points");
    tm_hits = reg->counter("ahs.sweep.structure_cache_hits");
    tm_misses = reg->counter("ahs.sweep.structure_cache_misses");
    tm_restored = reg->counter("ahs.sweep.points_restored");
    tm_retries = reg->counter("ahs.sweep.point_retries");
    tm_degraded = reg->counter("ahs.sweep.points_degraded");
    tm_point_seconds = reg->histogram(
        "ahs.sweep.point_seconds",
        {0, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120});
    // Pre-register the pool's instruments (normally registered by the
    // ThreadPool constructor): a sequential sweep creates no pool, and the
    // telemetry key set must be identical for any --threads value.
    reg->counter("util.thread_pool.tasks");
    reg->counter("util.thread_pool.busy_ns");
    reg->histogram("util.thread_pool.queue_depth",
                   {0, 1, 2, 4, 8, 16, 32, 64, 128});
    // Live-progress denominator for the telemetry tap (util/telemetry.h):
    // points done / points_total is how ahs_top draws its bar.
    reg->gauge("ahs.sweep.points_total")
        .set(static_cast<double>(points.size()));
  }

  // Flight-recorder lifecycle events (util/trace.h): one instant per point
  // transition, arg a = point index, so a Perfetto timeline shows when each
  // point was queued, started (cold build vs follower), and how it ended.
  util::TraceRecorder* trc = util::TraceRecorder::global();
  util::TraceName tr_queued, tr_cold, tr_warm, tr_computed, tr_restored,
      tr_degraded, tr_skipped;
  if (trc != nullptr) {
    tr_queued = trc->name("sweep.point.queued");
    tr_cold = trc->name("sweep.point.cold");
    tr_warm = trc->name("sweep.point.warm");
    tr_computed = trc->name("sweep.point.computed");
    tr_restored = trc->name("sweep.point.restored");
    tr_degraded = trc->name("sweep.point.degraded");
    tr_skipped = trc->name("sweep.point.skipped");
  }

  SweepResult result;
  result.curves.resize(points.size());
  result.structure_cache_hit.assign(points.size(), false);
  result.point_seconds.assign(points.size(), 0.0);
  result.outcome.assign(points.size(), PointOutcome::kSkipped);
  result.degraded_reason.assign(points.size(), std::string());
  if (points.empty()) return result;

  const bool caching =
      options.reuse_structure && (options.study.engine == Engine::kLumpedCtmc ||
                                  options.study.engine == Engine::kFullCtmc);
  StudyCache cache;

  // One Poisson-window cache per sweep (unless the caller supplied one):
  // neighboring points' uniformization solves share their Poisson windows
  // and truncation bounds — the λ/n axes move the uniformization rate by
  // less than the cache's quantization step, so most points hit (watch
  // ctmc.uniformization.poisson_cache_{hits,misses}).  Thread-safe;
  // window contents depend only on the key, so results stay independent of
  // the sweep thread count.
  ctmc::PoissonCache poisson_cache;
  const bool ctmc_engine = options.study.engine == Engine::kLumpedCtmc ||
                           options.study.engine == Engine::kFullCtmc;
  ctmc::PoissonCache* active_poisson_cache =
      !ctmc_engine ? nullptr
                   : (options.study.poisson_cache != nullptr
                          ? options.study.poisson_cache
                          : &poisson_cache);

  // One warm-start cache per sweep (adaptive solver under structure
  // caching): each group's cold build publishes the quasi-stationary
  // plateau shape its solve converged to, and the group's followers use it
  // to confirm their own plateaus after a short run instead of a cold
  // lookback window.  The cold-before-followers barrier below orders every
  // publish before every possible consume, so the curves stay identical for
  // any thread count.
  ctmc::WarmStartCache warm_cache;
  const bool warm_active =
      caching && options.study.solver == ctmc::TransientSolver::kAdaptive;
  ctmc::WarmStartCache* active_warm_cache =
      !warm_active ? nullptr
                   : (options.study.warm_cache != nullptr
                          ? options.study.warm_cache
                          : &warm_cache);

  // Warm-start persistence: a point's durable result file holds its curve
  // but no distribution, so a resumed sweep whose cold builds were all
  // restored would have nothing to warm its recomputed followers with —
  // they'd fall back to the cold plateau criteria and diverge (in iteration
  // count, not values) from the uninterrupted run.  Persisting sweeps
  // therefore snapshot every published shape after each cold point and
  // preload the file on resume.  The header identity covers everything that
  // makes shapes comparable: engine, solver, and the evaluation grid.
  const bool warm_persisting = warm_active && persisting;
  const std::string warm_path =
      warm_persisting ? options.checkpoint_dir + "/warm_starts.cache"
                      : std::string();
  util::SnapshotHeader warm_header;
  std::mutex warm_io_mutex;
  if (warm_persisting) {
    std::uint64_t wh = util::hash_mix(0, std::string("warm-shapes-v1"));
    wh = util::hash_mix(wh, static_cast<std::uint64_t>(options.study.engine));
    wh = util::hash_mix(wh, static_cast<std::uint64_t>(options.study.solver));
    for (double t : times) wh = util::hash_mix(wh, t);
    wh = util::hash_mix(wh, static_cast<std::uint64_t>(times.size()));
    warm_header = util::SnapshotHeader{"sweep-warm", 0, options.study.seed, wh};
    if (options.resume) {
      std::string payload;
      if (util::read_snapshot(warm_path, warm_header, &payload)) {
        const std::size_t n =
            decode_warm_entries(payload, active_warm_cache);
        if (reg != nullptr)
          reg->gauge("ahs.sweep.warm_shapes_preloaded")
              .set(static_cast<double>(n));
        AHS_LOGM_INFO("sweep")
            << "preloaded " << n << " warm-start shape(s) from " << warm_path;
      }
    }
  }

  // Split the points into cold builds (the first point of each structure
  // group — every point when not caching) and followers.  Running all cold
  // builds to completion first guarantees every follower hits the cache.
  std::vector<std::size_t> cold, followers;
  std::unordered_set<std::uint64_t> seen;
  std::vector<unsigned char> is_cold(points.size(), 0);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (caching && !seen.insert(group_key(points[i].params,
                                          options.study.engine)).second) {
      followers.push_back(i);
    } else {
      cold.push_back(i);
      is_cold[i] = 1;
    }
  }
  if (trc != nullptr)
    for (std::size_t i = 0; i < points.size(); ++i)
      tr_queued.instant(i, is_cold[i]);

  // vector<bool> packs bits, so concurrent writes to distinct indices would
  // race; stage the hit flags in bytes.
  std::vector<unsigned char> hits(points.size(), 0);
  std::atomic<bool> any_cancelled{false};

  const auto stopped = [&] {
    return options.stop != nullptr &&
           options.stop->load(std::memory_order_relaxed);
  };

  auto evaluate = [&](std::size_t i) {
    AHS_SPAN("sweep.point");
    (is_cold[i] != 0 ? tr_cold : tr_warm).instant(i);
    const auto start = std::chrono::steady_clock::now();
    const auto record_seconds = [&] {
      result.point_seconds[i] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
    };

    // Cooperative stop: points not yet started are skipped, preserving
    // whatever checkpoints the started points already flushed.
    if (stopped()) {
      any_cancelled.store(true, std::memory_order_relaxed);
      record_seconds();
      tr_skipped.instant(i);
      return;
    }

    const util::SnapshotHeader header =
        point_result_header(i, points[i], times, options.study);
    const std::string result_path =
        persisting ? point_path(options.checkpoint_dir, i, ".result")
                   : std::string();

    // Resume: a durable result file short-circuits the evaluation with the
    // bit-identical curve of the interrupted run.
    if (persisting && options.resume) {
      std::string payload;
      if (util::read_snapshot(result_path, header, &payload)) {
        result.curves[i] = decode_curve(payload);
        result.outcome[i] = PointOutcome::kRestored;
        record_seconds();
        tr_restored.instant(i);
        if (reg != nullptr) {
          tm_points.inc();
          tm_restored.inc();
        }
        return;
      }
    }

    StudyOptions study = options.study;
    study.stop = options.stop;
    study.max_seconds = options.point_timeout_seconds;
    study.poisson_cache = active_poisson_cache;
    if (active_warm_cache != nullptr) {
      // Key warm entries by structure group and evaluation grid: shapes are
      // only comparable between solves over the same state space and time
      // points (rate differences along the sweep axes are what the shape
      // tolerance absorbs).
      study.warm_cache = active_warm_cache;
      std::uint64_t wk = util::hash_mix(
          util::hash_mix(0, static_cast<std::uint64_t>(options.study.engine)),
          group_key(points[i].params, options.study.engine));
      for (double t : times) wk = util::hash_mix(wk, t);
      study.warm_key = wk;
      study.warm_publish = is_cold[i] != 0;
    }
    if (persisting) {
      study.checkpoint_path =
          point_path(options.checkpoint_dir, i, ".transient");
      study.resume = options.resume;
    }

    for (int attempt = 1;; ++attempt) {
      try {
        bool hit = false;
        result.curves[i] =
            unsafety_curve(points[i].params, times, study,
                           caching ? &cache : nullptr, &hit);
        hits[i] = hit ? 1 : 0;
        if (result.curves[i].cancelled) {
          // Progress is in the transient checkpoint; the point stays
          // kSkipped so a resume knows to finish it.
          any_cancelled.store(true, std::memory_order_relaxed);
        } else if (result.curves[i].timed_out) {
          result.outcome[i] = PointOutcome::kDegraded;
          result.degraded_reason[i] =
              "wall-clock budget of " +
              util::format_sci(options.point_timeout_seconds) +
              " s exhausted (progress checkpointed)";
          if (reg != nullptr) tm_degraded.inc();
          AHS_LOGM_WARN("sweep")
              << "point " << i << " (" << points[i].label
              << ") degraded: " << result.degraded_reason[i];
        } else {
          result.outcome[i] = PointOutcome::kComputed;
          if (persisting)
            util::write_snapshot(result_path, header,
                                 encode_curve(result.curves[i]));
          if (warm_persisting && is_cold[i] != 0) {
            // Snapshot the shapes after every cold completion (not once at
            // the end): a crash between cold builds must not lose the
            // shapes the finished builds already published.  Atomic write,
            // so readers never see a torn file.
            std::lock_guard<std::mutex> lock(warm_io_mutex);
            util::write_snapshot(warm_path, warm_header,
                                 encode_warm_entries(*active_warm_cache));
            if (reg != nullptr)
              reg->gauge("ahs.sweep.warm_shapes_persisted")
                  .set(static_cast<double>(active_warm_cache->size()));
          }
        }
        break;
      } catch (const util::SnapshotError&) {
        // A mismatched or corrupt checkpoint is a configuration error, not
        // a transient fault: retrying cannot help, and degrading would
        // silently discard the operator's resume intent.
        throw;
      } catch (const std::exception& e) {
        if (attempt < options.max_attempts && !stopped()) {
          if (reg != nullptr) tm_retries.inc();
          AHS_LOGM_WARN("sweep")
              << "point " << i << " (" << points[i].label
              << ") attempt " << attempt << "/" << options.max_attempts
              << " failed: " << e.what() << " — retrying";
          continue;
        }
        result.curves[i] = UnsafetyCurve{};
        result.outcome[i] = PointOutcome::kDegraded;
        result.degraded_reason[i] = e.what();
        if (reg != nullptr) tm_degraded.inc();
        AHS_LOGM_WARN("sweep")
            << "point " << i << " (" << points[i].label
            << ") degraded after " << attempt
            << " attempt(s): " << e.what();
        break;
      }
    }

    record_seconds();
    switch (result.outcome[i]) {
      case PointOutcome::kComputed: tr_computed.instant(i); break;
      case PointOutcome::kDegraded: tr_degraded.instant(i); break;
      case PointOutcome::kRestored: tr_restored.instant(i); break;
      case PointOutcome::kSkipped: tr_skipped.instant(i); break;
    }
    if (reg != nullptr) {
      tm_points.inc();
      (hits[i] != 0 ? tm_hits : tm_misses).inc();
      tm_point_seconds.record(result.point_seconds[i]);
    }
  };

  if (options.threads == 1) {
    for (std::size_t i : cold) evaluate(i);
    for (std::size_t i : followers) evaluate(i);
  } else {
    util::ThreadPool pool(options.threads);
    auto run_batch = [&](const std::vector<std::size_t>& batch) {
      std::vector<std::future<void>> futures;
      futures.reserve(batch.size());
      for (std::size_t i : batch)
        futures.push_back(pool.submit([&evaluate, i] { evaluate(i); }));
      for (auto& f : futures) f.get();
    };
    run_batch(cold);
    run_batch(followers);
  }

  for (std::size_t i = 0; i < points.size(); ++i)
    result.structure_cache_hit[i] = hits[i] != 0;
  result.cancelled = any_cancelled.load(std::memory_order_relaxed);
  if (active_poisson_cache != nullptr) {
    result.poisson_cache_hits = active_poisson_cache->hits();
    result.poisson_cache_misses = active_poisson_cache->misses();
    if (reg != nullptr)
      reg->gauge("ahs.sweep.poisson_cache_hit_rate")
          .set(active_poisson_cache->hit_rate());
  }
  if (active_warm_cache != nullptr) {
    result.warm_start_hits = active_warm_cache->hits();
    result.warm_start_misses = active_warm_cache->misses();
    if (reg != nullptr)
      reg->gauge("ahs.sweep.warm_start_hit_rate")
          .set(active_warm_cache->hit_rate());
  }
  for (const UnsafetyCurve& c : result.curves)
    result.total_solver_iterations += c.solver_iterations;
  result.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  return result;
}

}  // namespace ahs
