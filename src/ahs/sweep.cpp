#include "ahs/sweep.h"

#include <chrono>
#include <future>
#include <unordered_set>

#include "util/error.h"
#include "util/metrics.h"
#include "util/spans.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace ahs {

namespace {

std::string axis_label(const GridAxis& axis, double v) {
  return axis.name + "=" + util::format_sci(v);
}

/// The key under which two points share explored structure, or 0 for
/// engines with no structure cache (each such point is its own group).
std::uint64_t group_key(const Parameters& params, Engine engine) {
  switch (engine) {
    case Engine::kLumpedCtmc: return params.structural_fingerprint();
    case Engine::kFullCtmc: return StudyCache::full_key(params);
    case Engine::kSimulation:
    case Engine::kSimulationIS: return 0;
  }
  return 0;
}

}  // namespace

std::vector<SweepPoint> make_grid(const Parameters& base,
                                  const GridAxis& axis) {
  AHS_REQUIRE(axis.set != nullptr, "grid axis needs a setter");
  std::vector<SweepPoint> points;
  points.reserve(axis.values.size());
  for (double v : axis.values) {
    SweepPoint p{axis_label(axis, v), base};
    axis.set(p.params, v);
    points.push_back(std::move(p));
  }
  return points;
}

std::vector<SweepPoint> make_grid(const Parameters& base,
                                  const GridAxis& outer,
                                  const GridAxis& inner) {
  AHS_REQUIRE(outer.set != nullptr && inner.set != nullptr,
              "grid axes need setters");
  std::vector<SweepPoint> points;
  points.reserve(outer.values.size() * inner.values.size());
  for (double vo : outer.values) {
    for (double vi : inner.values) {
      SweepPoint p{axis_label(outer, vo) + "," + axis_label(inner, vi),
                   base};
      outer.set(p.params, vo);
      inner.set(p.params, vi);
      points.push_back(std::move(p));
    }
  }
  return points;
}

SweepResult run_sweep(const std::vector<SweepPoint>& points,
                      const std::vector<double>& times,
                      const SweepOptions& options) {
  AHS_REQUIRE(options.study.pool == nullptr,
              "SweepOptions::study.pool must be null — the sweep "
              "parallelizes across points (see StudyOptions::pool)");
  AHS_SPAN("sweep.run");
  const auto sweep_start = std::chrono::steady_clock::now();

  // Sweep telemetry ("ahs.sweep.*"): per-point wall time and the cache
  // hit/miss split, aggregated under the process-wide registry if attached.
  util::MetricsRegistry* reg = util::MetricsRegistry::global();
  util::Counter tm_points, tm_hits, tm_misses;
  util::HistogramHandle tm_point_seconds;
  if (reg != nullptr) {
    tm_points = reg->counter("ahs.sweep.points");
    tm_hits = reg->counter("ahs.sweep.structure_cache_hits");
    tm_misses = reg->counter("ahs.sweep.structure_cache_misses");
    tm_point_seconds = reg->histogram(
        "ahs.sweep.point_seconds",
        {0, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120});
    // Pre-register the pool's instruments (normally registered by the
    // ThreadPool constructor): a sequential sweep creates no pool, and the
    // telemetry key set must be identical for any --threads value.
    reg->counter("util.thread_pool.tasks");
    reg->counter("util.thread_pool.busy_ns");
    reg->histogram("util.thread_pool.queue_depth",
                   {0, 1, 2, 4, 8, 16, 32, 64, 128});
  }

  SweepResult result;
  result.curves.resize(points.size());
  result.structure_cache_hit.assign(points.size(), false);
  result.point_seconds.assign(points.size(), 0.0);
  if (points.empty()) return result;

  const bool caching =
      options.reuse_structure && (options.study.engine == Engine::kLumpedCtmc ||
                                  options.study.engine == Engine::kFullCtmc);
  StudyCache cache;

  // Split the points into cold builds (the first point of each structure
  // group — every point when not caching) and followers.  Running all cold
  // builds to completion first guarantees every follower hits the cache.
  std::vector<std::size_t> cold, followers;
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (caching && !seen.insert(group_key(points[i].params,
                                          options.study.engine)).second)
      followers.push_back(i);
    else
      cold.push_back(i);
  }

  // vector<bool> packs bits, so concurrent writes to distinct indices would
  // race; stage the hit flags in bytes.
  std::vector<unsigned char> hits(points.size(), 0);
  auto evaluate = [&](std::size_t i) {
    AHS_SPAN("sweep.point");
    const auto start = std::chrono::steady_clock::now();
    bool hit = false;
    result.curves[i] =
        unsafety_curve(points[i].params, times, options.study,
                       caching ? &cache : nullptr, &hit);
    hits[i] = hit ? 1 : 0;
    result.point_seconds[i] =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    if (reg != nullptr) {
      tm_points.inc();
      (hit ? tm_hits : tm_misses).inc();
      tm_point_seconds.record(result.point_seconds[i]);
    }
  };

  if (options.threads == 1) {
    for (std::size_t i : cold) evaluate(i);
    for (std::size_t i : followers) evaluate(i);
  } else {
    util::ThreadPool pool(options.threads);
    auto run_batch = [&](const std::vector<std::size_t>& batch) {
      std::vector<std::future<void>> futures;
      futures.reserve(batch.size());
      for (std::size_t i : batch)
        futures.push_back(pool.submit([&evaluate, i] { evaluate(i); }));
      for (auto& f : futures) f.get();
    };
    run_batch(cold);
    run_batch(followers);
  }

  for (std::size_t i = 0; i < points.size(); ++i)
    result.structure_cache_hit[i] = hits[i] != 0;
  result.total_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    sweep_start)
          .count();
  return result;
}

}  // namespace ahs
