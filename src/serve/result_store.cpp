#include "serve/result_store.h"

#include <sstream>

#include "util/snapshot.h"

namespace serve {

namespace {

[[noreturn]] void reject(std::uint64_t key, const ResultIdentity& have,
                         const ResultIdentity& want) {
  std::ostringstream os;
  os << "result-store identity mismatch for key " << key
     << ": stored (params " << have.params_hash << ", times "
     << have.times_hash << ", seed " << have.seed << ") vs incoming (params "
     << want.params_hash << ", times " << want.times_hash << ", seed "
     << want.seed << ") — rejecting, results are never merged across "
     << "identities";
  throw util::SnapshotError(os.str());
}

}  // namespace

ResultStore::Claim ResultStore::claim(std::uint64_t key,
                                      const ResultIdentity& id) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end()) {
    Entry e;
    e.identity = id;
    entries_.emplace(key, std::move(e));
    ++misses_;
    return Claim::kCompute;
  }
  if (!(it->second.identity == id)) reject(key, it->second.identity, id);
  if (it->second.state == State::kDone) {
    ++hits_;
    return Claim::kReady;
  }
  // In flight by another request: sharing the pending computation is the
  // compute-once win, counted as a hit (no second evaluation happens).
  ++hits_;
  return Claim::kWait;
}

void ResultStore::publish(std::uint64_t key, const ResultIdentity& id,
                          const ahs::UnsafetyCurve& curve) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      // Publish without a prior claim (e.g. a restored durable file): treat
      // as claim+publish in one step.
      Entry e;
      e.identity = id;
      it = entries_.emplace(key, std::move(e)).first;
    }
    if (!(it->second.identity == id)) reject(key, it->second.identity, id);
    it->second.curve = curve;
    it->second.state = State::kDone;
  }
  cv_.notify_all();
}

void ResultStore::abandon(std::uint64_t key) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end() || it->second.state == State::kDone) return;
    entries_.erase(it);
  }
  cv_.notify_all();
}

bool ResultStore::wait_for(std::uint64_t key, ahs::UnsafetyCurve* curve) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return false;  // abandoned — caller re-claims
    if (it->second.state == State::kDone) {
      *curve = it->second.curve;
      return true;
    }
    cv_.wait(lock);
  }
}

bool ResultStore::find(std::uint64_t key, ahs::UnsafetyCurve* curve) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = entries_.find(key);
  if (it == entries_.end() || it->second.state != State::kDone) {
    ++misses_;
    return false;
  }
  ++hits_;
  *curve = it->second.curve;
  return true;
}

std::uint64_t ResultStore::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}

std::uint64_t ResultStore::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}

std::size_t ResultStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace serve
