#include "serve/schedule.h"

#include <algorithm>
#include <limits>

#include "util/error.h"

namespace serve {

namespace {

class FifoPolicy final : public SchedulePolicy {
 public:
  const char* name() const override { return "fifo"; }
  std::size_t pick(const std::vector<PendingPoint>& pending,
                   const std::map<std::string, std::uint64_t>&) override {
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i)
      if (pending[i].enqueue_order < pending[best].enqueue_order) best = i;
    return best;
  }
};

class ShortestFirstPolicy final : public SchedulePolicy {
 public:
  const char* name() const override { return "sjf"; }
  std::size_t pick(const std::vector<PendingPoint>& pending,
                   const std::map<std::string, std::uint64_t>&) override {
    // Unknown costs (<= 0) sort *after* every known cost: a point we know
    // to be short should not wait behind a mystery, and mysteries keep
    // their arrival order among themselves.
    const auto key = [](const PendingPoint& p) {
      return p.expected_seconds > 0.0
                 ? p.expected_seconds
                 : std::numeric_limits<double>::infinity();
    };
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      const double a = key(pending[i]), b = key(pending[best]);
      if (a < b || (a == b &&
                    pending[i].enqueue_order < pending[best].enqueue_order))
        best = i;
    }
    return best;
  }
};

class FairSharePolicy final : public SchedulePolicy {
 public:
  const char* name() const override { return "fair"; }
  std::size_t pick(const std::vector<PendingPoint>& pending,
                   const std::map<std::string, std::uint64_t>& dispatched)
      override {
    const auto share = [&dispatched](const PendingPoint& p) {
      const auto it = dispatched.find(p.client);
      return it != dispatched.end() ? it->second : std::uint64_t{0};
    };
    std::size_t best = 0;
    for (std::size_t i = 1; i < pending.size(); ++i) {
      const std::uint64_t a = share(pending[i]), b = share(pending[best]);
      if (a < b || (a == b &&
                    pending[i].enqueue_order < pending[best].enqueue_order))
        best = i;
    }
    return best;
  }
};

}  // namespace

std::unique_ptr<SchedulePolicy> make_policy(const std::string& name) {
  if (name == "fifo") return std::make_unique<FifoPolicy>();
  if (name == "sjf") return std::make_unique<ShortestFirstPolicy>();
  if (name == "fair") return std::make_unique<FairSharePolicy>();
  throw util::PreconditionError("unknown schedule policy \"" + name +
                                "\" (expected fifo, sjf, or fair)");
}

Scheduler::Scheduler(std::unique_ptr<SchedulePolicy> policy)
    : policy_(std::move(policy)) {
  AHS_REQUIRE(policy_ != nullptr, "Scheduler needs a policy");
  stats_.policy = policy_->name();
}

void Scheduler::enqueue(PendingPoint point, double now_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  point.enqueue_order = next_order_++;
  point.enqueue_seconds = now_seconds;
  if (stats_.first_enqueue_seconds < 0.0)
    stats_.first_enqueue_seconds = now_seconds;
  ++stats_.enqueued;
  pending_.push_back(std::move(point));
}

bool Scheduler::pop(PendingPoint* out, double now_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (pending_.empty()) return false;
  const std::size_t i = policy_->pick(pending_, dispatched_by_client_);
  AHS_ASSERT(i < pending_.size(), "policy picked out of range");
  *out = pending_[i];
  pending_.erase(pending_.begin() + static_cast<std::ptrdiff_t>(i));
  ++dispatched_by_client_[out->client];
  const double wait = now_seconds - out->enqueue_seconds;
  ++stats_.dispatched;
  stats_.total_wait_seconds += wait;
  stats_.max_wait_seconds = std::max(stats_.max_wait_seconds, wait);
  stats_.last_dispatch_seconds = now_seconds;
  return true;
}

std::size_t Scheduler::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return pending_.size();
}

Scheduler::Stats Scheduler::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace serve
