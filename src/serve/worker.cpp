#include "serve/worker.h"

#include <chrono>
#include <exception>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>

#include "serve/protocol.h"
#include "util/json.h"
#include "util/snapshot.h"

namespace serve {

int run_worker(const std::string& task_file) {
  try {
    std::ifstream in(task_file, std::ios::binary);
    if (!in) {
      std::cerr << "worker: cannot read task file " << task_file << "\n";
      return 1;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const WorkerTask task = decode_task(util::parse_json(buf.str()));

    if (task.debug_delay_seconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(task.debug_delay_seconds));

    const ahs::UnsafetyCurve curve =
        ahs::unsafety_curve(task.point.params, task.times, task.study);

    // The directory of the task file is the work dir; the atomic rename in
    // write_snapshot is the commit point — everything before it is
    // invisible to the supervisor.
    const std::size_t slash = task_file.rfind('/');
    const std::string dir =
        slash == std::string::npos ? "." : task_file.substr(0, slash);
    util::write_snapshot(
        task_result_path(dir, task.task_id),
        ahs::point_result_header(task.task_id, task.point, task.times,
                                 task.study),
        ahs::encode_curve(curve));
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "worker: " << task_file << ": " << e.what() << "\n";
    return 1;
  }
}

}  // namespace serve
