// The ahs_server evaluation daemon: accepts study/sweep requests as JSON
// over a local Unix socket (serve/protocol.h), queues their points behind
// a pluggable SchedulePolicy (serve/schedule.h), fans them out to worker
// *processes* supervised over the durable point-file protocol
// (serve/supervisor.h), and merges results across concurrent requests
// through the ResultStore (serve/result_store.h) so shared points are
// computed exactly once.
//
// Threading model:
//   * one accept loop (run() itself) spawning a thread per connection —
//     connections are few (clients, monitors), points are many;
//   * one dispatch loop thread owning the supervisor: it fills free worker
//     slots from the scheduler and polls completions.  All process
//     supervision lives on this single thread, so there are no waitpid
//     races by construction.
//
// Observability: the server owns a TelemetrySession and (optionally) a
// TelemetryTap publishing the standard `ahs.telemetry.live.v1` file.  It
// feeds the exact counters/gauges run_sweep feeds ("ahs.sweep.points",
// "ahs.sweep.points_total", ...), so examples/ahs_top monitors a server
// exactly as it monitors a local sweep — unmodified.  Service-specific
// metrics live under "ahs.serve.*" (docs/OBSERVABILITY.md).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/protocol.h"
#include "serve/result_store.h"
#include "serve/schedule.h"
#include "serve/supervisor.h"
#include "util/socket.h"

namespace util {
class TelemetryTap;
class TelemetrySession;
}  // namespace util

namespace serve {

struct ServerOptions {
  std::string socket_path;
  /// Task/result file directory (created if absent).
  std::string work_dir;
  /// Concurrent worker processes (>= 1).
  int max_workers = 2;
  /// "fifo" | "sjf" | "fair".
  std::string policy = "fifo";
  /// Live telemetry tap file ("" disables); ahs_top-compatible.
  std::string tap_path;
  double tap_interval_seconds = 0.5;
  /// Worker spawn attempts per point.
  int max_attempts = 3;
  /// Executable for worker processes ("" = this binary).
  std::string worker_exe;
  /// Test knob forwarded into every worker task (see
  /// WorkerTask::debug_delay_seconds).
  double debug_worker_delay_seconds = 0.0;
};

class Server {
 public:
  explicit Server(ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Serves until shutdown() (from a connection's shutdown op or another
  /// thread).  Blocks.
  void run();

  /// Asynchronous stop: closes the listener, drains connections, kills
  /// live workers.  Idempotent, thread-safe.
  void shutdown();

  /// The socket path (for tests that construct with an ephemeral dir).
  const std::string& socket_path() const { return options_.socket_path; }

 private:
  struct Job {
    std::uint64_t id = 0;
    std::string client;
    SubmitRequest request;
    std::vector<std::uint64_t> identity;       ///< per point
    std::vector<ahs::UnsafetyCurve> curves;    ///< per point
    std::vector<std::string> outcome;          ///< "computed"|"cached"|"failed"
    std::vector<std::string> error;            ///< per point, "" when fine
    std::size_t unresolved = 0;
    std::condition_variable done_cv;
    std::mutex done_mutex;
  };

  void handle_connection(util::Socket socket);
  std::string handle_request(const std::string& line);
  std::string handle_submit(const util::JsonValue& doc);
  std::string handle_stats();
  void dispatch_loop();
  double now_seconds() const;
  /// EWMA point-cost estimate for SJF, keyed on structural fingerprint.
  double expected_seconds(const ahs::Parameters& params) const;
  void record_seconds(const ahs::Parameters& params, double seconds);

  ServerOptions options_;
  std::unique_ptr<util::TelemetrySession> session_;
  std::unique_ptr<util::TelemetryTap> tap_;
  std::unique_ptr<util::UnixListener> listener_;
  Scheduler scheduler_;
  ResultStore store_;
  std::unique_ptr<WorkerSupervisor> supervisor_;

  std::atomic<bool> stopping_{false};
  std::thread dispatcher_;
  std::mutex connections_mutex_;
  std::vector<std::thread> connections_;

  std::mutex jobs_mutex_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::atomic<std::uint64_t> next_task_id_{0};
  /// task_id → (job, point) of the request that claimed the computation.
  std::map<std::uint64_t, std::pair<std::shared_ptr<Job>, std::size_t>>
      task_owner_;

  mutable std::mutex cost_mutex_;
  std::map<std::uint64_t, double> cost_ewma_;  ///< fingerprint → seconds

  std::chrono::steady_clock::time_point start_;
  /// Unique identities ever accepted / completed — the ahs_top progress
  /// denominator and numerator.
  std::atomic<std::uint64_t> points_total_{0};
};

}  // namespace serve
