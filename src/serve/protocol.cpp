#include "serve/protocol.h"

#include <sstream>

#include "util/error.h"
#include "util/string_util.h"

namespace serve {

namespace {

void emit_doubles(std::ostringstream& os, const char* key,
                  const double* v, std::size_t n) {
  os << "\"" << key << "\":[";
  for (std::size_t i = 0; i < n; ++i)
    os << (i != 0 ? "," : "") << util::json_number(v[i]);
  os << "]";
}

void emit_bools(std::ostringstream& os, const char* key, const bool* v,
                std::size_t n) {
  os << "\"" << key << "\":[";
  for (std::size_t i = 0; i < n; ++i)
    os << (i != 0 ? "," : "") << (v[i] ? "true" : "false");
  os << "]";
}

std::vector<double> doubles_at(const util::JsonValue& v,
                               std::string_view key) {
  std::vector<double> out;
  if (const util::JsonValue* a = v.find(key))
    for (const util::JsonValue& x : a->array) out.push_back(x.as_number());
  return out;
}

template <std::size_t N>
void fill_doubles(const util::JsonValue& v, std::string_view key,
                  std::array<double, N>* out) {
  const std::vector<double> xs = doubles_at(v, key);
  AHS_REQUIRE(xs.empty() || xs.size() == N,
              std::string(key) + " must have " + std::to_string(N) +
                  " entries");
  for (std::size_t i = 0; i < xs.size(); ++i) (*out)[i] = xs[i];
}

ctmc::TransientSolver parse_solver(const std::string& s) {
  if (s == "standard") return ctmc::TransientSolver::kStandard;
  if (s == "adaptive") return ctmc::TransientSolver::kAdaptive;
  if (s == "krylov") return ctmc::TransientSolver::kKrylov;
  throw util::PreconditionError("unknown transient solver \"" + s + "\"");
}

}  // namespace

std::string encode_params(const ahs::Parameters& p) {
  std::ostringstream os;
  os << "{\"max_per_platoon\":" << p.max_per_platoon
     << ",\"num_platoons\":" << p.num_platoons
     << ",\"base_failure_rate\":" << util::json_number(p.base_failure_rate)
     << ",";
  emit_doubles(os, "rate_multipliers", p.rate_multipliers.data(),
               p.rate_multipliers.size());
  os << ",";
  emit_bools(os, "failure_mode_enabled", p.failure_mode_enabled.data(),
             p.failure_mode_enabled.size());
  os << ",";
  emit_doubles(os, "maneuver_rates", p.maneuver_rates.data(),
               p.maneuver_rates.size());
  os << ",\"maneuver_time_model\":"
     << static_cast<int>(p.maneuver_time_model)
     << ",\"join_rate\":" << util::json_number(p.join_rate)
     << ",\"leave_rate\":" << util::json_number(p.leave_rate)
     << ",\"change_rate\":" << util::json_number(p.change_rate)
     << ",\"transit_rate\":" << util::json_number(p.transit_rate)
     << ",\"q_intrinsic\":" << util::json_number(p.q_intrinsic)
     << ",\"max_transit\":" << p.max_transit << ",\"strategy\":\""
     << ahs::to_string(p.strategy) << "\",\"adjacency_radius\":"
     << p.adjacency_radius << "}";
  return os.str();
}

ahs::Parameters decode_params(const util::JsonValue& v) {
  ahs::Parameters p;  // absent fields keep the §4.1 defaults
  p.max_per_platoon =
      static_cast<int>(v.number_at("max_per_platoon", p.max_per_platoon));
  p.num_platoons =
      static_cast<int>(v.number_at("num_platoons", p.num_platoons));
  p.base_failure_rate =
      v.number_at("base_failure_rate", p.base_failure_rate);
  fill_doubles(v, "rate_multipliers", &p.rate_multipliers);
  if (const util::JsonValue* e = v.find("failure_mode_enabled")) {
    AHS_REQUIRE(e->array.size() == p.failure_mode_enabled.size(),
                "failure_mode_enabled must have " +
                    std::to_string(p.failure_mode_enabled.size()) +
                    " entries");
    for (std::size_t i = 0; i < e->array.size(); ++i)
      p.failure_mode_enabled[i] = e->array[i].as_bool();
  }
  fill_doubles(v, "maneuver_rates", &p.maneuver_rates);
  p.maneuver_time_model = static_cast<ahs::ManeuverTimeModel>(
      static_cast<int>(v.number_at(
          "maneuver_time_model", static_cast<int>(p.maneuver_time_model))));
  p.join_rate = v.number_at("join_rate", p.join_rate);
  p.leave_rate = v.number_at("leave_rate", p.leave_rate);
  p.change_rate = v.number_at("change_rate", p.change_rate);
  p.transit_rate = v.number_at("transit_rate", p.transit_rate);
  p.q_intrinsic = v.number_at("q_intrinsic", p.q_intrinsic);
  p.max_transit = static_cast<int>(v.number_at("max_transit", p.max_transit));
  if (const util::JsonValue* s = v.find("strategy"))
    p.strategy = ahs::parse_strategy(s->as_string("DD"));
  p.adjacency_radius = static_cast<int>(
      v.number_at("adjacency_radius", p.adjacency_radius));
  return p;
}

std::string encode_study(const ahs::StudyOptions& s) {
  std::ostringstream os;
  os << "{\"engine\":\"" << ahs::to_string(s.engine) << "\",\"solver\":\""
     << ctmc::to_string(s.solver) << "\",\"seed\":" << s.seed
     << ",\"min_replications\":" << s.min_replications
     << ",\"max_replications\":" << s.max_replications
     << ",\"rel_half_width\":" << util::json_number(s.rel_half_width)
     << ",\"abs_half_width\":" << util::json_number(s.abs_half_width)
     << ",\"confidence\":" << util::json_number(s.confidence)
     << ",\"failure_boost\":" << util::json_number(s.failure_boost)
     << ",\"fail_case_bias\":" << util::json_number(s.fail_case_bias)
     << ",\"max_states\":" << s.max_states << "}";
  return os.str();
}

ahs::StudyOptions decode_study(const util::JsonValue& v) {
  ahs::StudyOptions s;
  if (const util::JsonValue* e = v.find("engine"))
    s.engine = ahs::parse_engine(e->as_string("lumped-ctmc"));
  if (const util::JsonValue* sv = v.find("solver"))
    s.solver = parse_solver(sv->as_string("adaptive"));
  s.seed = static_cast<std::uint64_t>(v.number_at("seed", s.seed));
  s.min_replications = static_cast<std::uint64_t>(
      v.number_at("min_replications", s.min_replications));
  s.max_replications = static_cast<std::uint64_t>(
      v.number_at("max_replications", s.max_replications));
  s.rel_half_width = v.number_at("rel_half_width", s.rel_half_width);
  s.abs_half_width = v.number_at("abs_half_width", s.abs_half_width);
  s.confidence = v.number_at("confidence", s.confidence);
  s.failure_boost = v.number_at("failure_boost", s.failure_boost);
  s.fail_case_bias = v.number_at("fail_case_bias", s.fail_case_bias);
  s.max_states =
      static_cast<std::size_t>(v.number_at("max_states", s.max_states));
  return s;
}

std::string encode_curve_json(const ahs::UnsafetyCurve& c) {
  std::ostringstream os;
  os << "{";
  emit_doubles(os, "times", c.times.data(), c.times.size());
  os << ",";
  emit_doubles(os, "unsafety", c.unsafety.data(), c.unsafety.size());
  os << ",";
  emit_doubles(os, "half_width", c.half_width.data(), c.half_width.size());
  os << ",\"replications\":" << c.replications
     << ",\"solver_iterations\":" << c.solver_iterations
     << ",\"converged\":" << (c.converged ? "true" : "false")
     << ",\"cancelled\":" << (c.cancelled ? "true" : "false")
     << ",\"timed_out\":" << (c.timed_out ? "true" : "false")
     << ",\"resumed\":" << (c.resumed ? "true" : "false") << "}";
  return os.str();
}

ahs::UnsafetyCurve decode_curve_json(const util::JsonValue& v) {
  ahs::UnsafetyCurve c;
  c.times = doubles_at(v, "times");
  c.unsafety = doubles_at(v, "unsafety");
  c.half_width = doubles_at(v, "half_width");
  c.replications =
      static_cast<std::uint64_t>(v.number_at("replications", 0));
  c.solver_iterations =
      static_cast<std::uint64_t>(v.number_at("solver_iterations", 0));
  const util::JsonValue* b = v.find("converged");
  c.converged = b != nullptr ? b->as_bool(true) : true;
  if ((b = v.find("cancelled")) != nullptr) c.cancelled = b->as_bool();
  if ((b = v.find("timed_out")) != nullptr) c.timed_out = b->as_bool();
  if ((b = v.find("resumed")) != nullptr) c.resumed = b->as_bool();
  return c;
}

std::string encode_submit(const SubmitRequest& req) {
  std::ostringstream os;
  os << "{\"op\":\"submit\",\"client\":\"" << util::json_escape(req.client)
     << "\",";
  emit_doubles(os, "times", req.times.data(), req.times.size());
  os << ",\"study\":" << encode_study(req.study) << ",\"points\":[";
  for (std::size_t i = 0; i < req.points.size(); ++i) {
    os << (i != 0 ? "," : "") << "{\"label\":\""
       << util::json_escape(req.points[i].label)
       << "\",\"params\":" << encode_params(req.points[i].params) << "}";
  }
  os << "]}";
  return os.str();
}

SubmitRequest decode_submit(const util::JsonValue& v) {
  SubmitRequest req;
  req.client = v.string_at("client", "anonymous");
  if (req.client.empty()) req.client = "anonymous";
  req.times = doubles_at(v, "times");
  AHS_REQUIRE(!req.times.empty(), "submit needs a non-empty times grid");
  if (const util::JsonValue* s = v.find("study"))
    req.study = decode_study(*s);
  const util::JsonValue* pts = v.find("points");
  AHS_REQUIRE(pts != nullptr && !pts->array.empty(),
              "submit needs a non-empty points array");
  for (const util::JsonValue& p : pts->array) {
    ahs::SweepPoint sp;
    sp.label = p.string_at("label", "");
    if (const util::JsonValue* pr = p.find("params"))
      sp.params = decode_params(*pr);
    req.points.push_back(std::move(sp));
  }
  return req;
}

std::string encode_task(const WorkerTask& t) {
  std::ostringstream os;
  os << "{\"task_id\":" << t.task_id << ",\"label\":\""
     << util::json_escape(t.point.label)
     << "\",\"params\":" << encode_params(t.point.params) << ",";
  emit_doubles(os, "times", t.times.data(), t.times.size());
  os << ",\"study\":" << encode_study(t.study)
     << ",\"debug_delay_seconds\":"
     << util::json_number(t.debug_delay_seconds) << "}";
  return os.str();
}

WorkerTask decode_task(const util::JsonValue& v) {
  WorkerTask t;
  t.task_id = static_cast<std::uint64_t>(v.number_at("task_id", 0));
  t.point.label = v.string_at("label", "");
  if (const util::JsonValue* p = v.find("params"))
    t.point.params = decode_params(*p);
  t.times = doubles_at(v, "times");
  if (const util::JsonValue* s = v.find("study"))
    t.study = decode_study(*s);
  t.debug_delay_seconds = v.number_at("debug_delay_seconds", 0.0);
  return t;
}

std::string task_path(const std::string& dir, std::uint64_t task_id) {
  return dir + "/point_" + std::to_string(task_id) + ".task";
}

std::string task_result_path(const std::string& dir, std::uint64_t task_id) {
  return dir + "/point_" + std::to_string(task_id) + ".result";
}

}  // namespace serve
