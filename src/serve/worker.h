// Worker-process side of the ahs_server service: the hidden
// `ahs_server --worker --task <file>` mode.  One worker process evaluates
// exactly one sweep point and writes the durable result file — then exits.
//
// The result file IS the wire format (see ahs/sweep.h "durable point-file
// protocol"): snapshot kind "sweep-point" with header
// ahs::point_result_header(task_id, point, times, study), payload
// ahs::encode_curve — byte-for-byte the file run_sweep would persist for
// this point.  Crash-safety falls out of util/snapshot's atomic write: a
// worker SIGKILLed mid-solve leaves no file (the supervisor re-runs the
// task), one killed after the rename leaves a complete, identity-checked
// result (the supervisor harvests it without re-running).  No pipes, no
// shared memory, no partial-state protocol.
#pragma once

#include <string>

namespace serve {

/// Evaluates the WorkerTask serialized in `task_file` (serve/protocol.h)
/// and writes the durable result next to it.  Returns a process exit code:
/// 0 on success, 1 on any failure (malformed task, model validation error,
/// solver failure) with the reason on stderr.
int run_worker(const std::string& task_file);

}  // namespace serve
