// Wire protocol of the ahs_server evaluation service: newline-delimited
// JSON over a Unix-domain socket (util/socket.h), parsed with the strict
// util/json reader.  One request line in, one response line out per
// operation; progress is NOT streamed on the socket — the server publishes
// a standard `ahs.telemetry.live.v1` tap file that examples/ahs_top tails
// unmodified.
//
// Requests ({"op": ...}):
//   ping                      → {"ok":true,"op":"ping"}
//   submit                    → evaluates a batch of sweep points; blocks
//     {"op":"submit","client":"alice","times":[...],
//      "study":{...},"points":[{"label":...,"params":{...}},...]}
//     → {"ok":true,"job":<id>,"results":[{"label":...,"outcome":...,
//        "from_cache":bool,"curve":{...}},...]}
//   stats                     → scheduler/store/worker observability, incl.
//                               the live worker pids (the kill tests aim
//                               SIGKILL with these)
//   shutdown                  → stops the server after the reply
//
// Doubles travel as JSON numbers rendered by util::json_number (shortest
// round-trip), so a curve is bit-identical after encode→parse→decode:
// serving a result is never a source of drift versus computing it locally.
//
// The serialization of Parameters/StudyOptions here covers exactly the
// result-determining fields that ahs::point_identity_hash folds — the
// cross-request ResultStore merges on that hash, so a field the protocol
// dropped would let two *different* requests collide.  Keep them in sync.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ahs/study.h"
#include "ahs/sweep.h"
#include "util/json.h"

namespace serve {

// ---- building blocks ---------------------------------------------------

/// {"max_per_platoon":..., ...} — every value field of Parameters.
std::string encode_params(const ahs::Parameters& p);
ahs::Parameters decode_params(const util::JsonValue& v);

/// {"engine":"lumped-ctmc","solver":"adaptive","seed":42,...} — the
/// result-determining StudyOptions subset (pointers and robustness wiring
/// are per-process and never travel).
std::string encode_study(const ahs::StudyOptions& s);
ahs::StudyOptions decode_study(const util::JsonValue& v);

std::string encode_curve_json(const ahs::UnsafetyCurve& c);
ahs::UnsafetyCurve decode_curve_json(const util::JsonValue& v);

// ---- requests ----------------------------------------------------------

struct SubmitRequest {
  std::string client;  ///< fair-share identity; "" reads as "anonymous"
  std::vector<ahs::SweepPoint> points;
  std::vector<double> times;
  ahs::StudyOptions study;
};

std::string encode_submit(const SubmitRequest& req);
SubmitRequest decode_submit(const util::JsonValue& v);

// ---- worker task files -------------------------------------------------

/// The unit a worker process evaluates: one sweep point.  Serialized into
/// `<work_dir>/point_<task_id>.task`; the worker answers with
/// `<work_dir>/point_<task_id>.result` — exactly the durable file
/// run_sweep writes (header ahs::point_result_header keyed on task_id), so
/// a SIGKILLed worker is restartable for free: the result file either
/// exists complete (atomic rename) or not at all.
struct WorkerTask {
  std::uint64_t task_id = 0;
  ahs::SweepPoint point;
  std::vector<double> times;
  ahs::StudyOptions study;
  /// Test knob: seconds the worker sleeps *before* solving, giving the
  /// kill tests a deterministic window to SIGKILL a live worker mid-point.
  double debug_delay_seconds = 0.0;
};

std::string encode_task(const WorkerTask& t);
WorkerTask decode_task(const util::JsonValue& v);

/// `<dir>/point_<task_id>.task` / `.result` — the naming contract between
/// supervisor and worker.
std::string task_path(const std::string& dir, std::uint64_t task_id);
std::string task_result_path(const std::string& dir, std::uint64_t task_id);

}  // namespace serve
