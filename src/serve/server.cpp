#include "serve/server.h"

#include <filesystem>
#include <sstream>
#include <utility>

#include "util/error.h"
#include "util/json.h"
#include "util/logging.h"
#include "util/metrics.h"
#include "util/snapshot.h"
#include "util/string_util.h"
#include "util/subprocess.h"
#include "util/telemetry.h"

namespace serve {

namespace {

/// EWMA weight for the per-fingerprint point-cost model: recent points
/// dominate (the sweep axes drift rates, not structure, so cost moves
/// slowly within a fingerprint).
constexpr double kCostAlpha = 0.3;

ResultIdentity identity_of(const ahs::Parameters& params,
                           const std::vector<double>& times,
                           const ahs::StudyOptions& study) {
  ResultIdentity id;
  id.params_hash = params.structural_fingerprint();
  std::uint64_t th = 0;
  for (double t : times) th = util::hash_mix(th, t);
  id.times_hash = util::hash_mix(th, static_cast<std::uint64_t>(times.size()));
  id.seed = study.seed;
  return id;
}

}  // namespace

Server::Server(ServerOptions options)
    : options_(std::move(options)),
      scheduler_(make_policy(options_.policy)),
      start_(std::chrono::steady_clock::now()) {
  AHS_REQUIRE(!options_.socket_path.empty(), "server needs a socket path");
  AHS_REQUIRE(!options_.work_dir.empty(), "server needs a work dir");
  AHS_REQUIRE(options_.max_workers >= 1, "max_workers must be >= 1");
  std::filesystem::create_directories(options_.work_dir);

  // The session attaches the process-wide registry the tap (and every
  // instrumented component) reads; create it before everything else.
  session_ = std::make_unique<util::TelemetrySession>();
  if (!options_.tap_path.empty())
    tap_ = std::make_unique<util::TelemetryTap>(
        options_.tap_path, options_.tap_interval_seconds);

  WorkerSupervisor::Options sup;
  sup.work_dir = options_.work_dir;
  sup.worker_exe = options_.worker_exe.empty() ? util::self_exe_path()
                                               : options_.worker_exe;
  sup.max_attempts = options_.max_attempts;
  supervisor_ = std::make_unique<WorkerSupervisor>(std::move(sup));

  listener_ = std::make_unique<util::UnixListener>(options_.socket_path);
  AHS_LOGM_INFO("serve")
      << "ahs_server listening on " << options_.socket_path << " (policy "
      << options_.policy << ", workers " << options_.max_workers << ")";
}

Server::~Server() { shutdown(); }

double Server::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

double Server::expected_seconds(const ahs::Parameters& params) const {
  std::lock_guard<std::mutex> lock(cost_mutex_);
  const auto it = cost_ewma_.find(params.structural_fingerprint());
  return it != cost_ewma_.end() ? it->second : 0.0;
}

void Server::record_seconds(const ahs::Parameters& params, double seconds) {
  std::lock_guard<std::mutex> lock(cost_mutex_);
  auto [it, inserted] =
      cost_ewma_.emplace(params.structural_fingerprint(), seconds);
  if (!inserted)
    it->second = (1.0 - kCostAlpha) * it->second + kCostAlpha * seconds;
}

void Server::run() {
  dispatcher_ = std::thread([this] { dispatch_loop(); });
  for (;;) {
    util::Socket socket = listener_->accept_connection();
    if (!socket.valid()) break;  // listener closed → shutting down
    std::lock_guard<std::mutex> lock(connections_mutex_);
    connections_.emplace_back(
        [this](util::Socket s) { handle_connection(std::move(s)); },
        std::move(socket));
  }
  if (dispatcher_.joinable()) dispatcher_.join();
  supervisor_->kill_all();

  // Fail whatever is still unresolved so no submit thread hangs forever.
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    for (auto& [task_id, owner] : task_owner_) {
      const auto& [job, i] = owner;
      std::lock_guard<std::mutex> jlock(job->done_mutex);
      if (job->outcome[i].empty()) {
        job->outcome[i] = "failed";
        job->error[i] = "server shut down before the point was evaluated";
        --job->unresolved;
      }
      store_.abandon(job->identity[i]);
      job->done_cv.notify_all();
    }
    task_owner_.clear();
  }

  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(connections_mutex_);
    conns.swap(connections_);
  }
  for (std::thread& t : conns)
    if (t.joinable()) t.join();
}

void Server::shutdown() {
  if (stopping_.exchange(true)) return;
  AHS_LOGM_INFO("serve") << "ahs_server shutting down";
  listener_->close();
}

void Server::handle_connection(util::Socket socket) {
  std::string line;
  while (socket.recv_line(&line)) {
    std::string reply;
    try {
      reply = handle_request(line);
    } catch (const std::exception& e) {
      reply = std::string("{\"ok\":false,\"error\":\"") +
              util::json_escape(e.what()) + "\"}";
    }
    if (!socket.send_line(reply)) break;
    // handle_request flags shutdown by throwing nothing: check afterwards
    // so the requester still gets its acknowledgment.
    if (stopping_.load(std::memory_order_relaxed)) break;
  }
}

std::string Server::handle_request(const std::string& line) {
  const util::JsonValue doc = util::parse_json(line);
  const std::string op = doc.string_at("op");
  if (op == "ping") return "{\"ok\":true,\"op\":\"ping\"}";
  if (op == "stats") return handle_stats();
  if (op == "shutdown") {
    shutdown();
    return "{\"ok\":true,\"op\":\"shutdown\"}";
  }
  if (op == "submit") return handle_submit(doc);
  throw util::PreconditionError("unknown op \"" + op + "\"");
}

std::string Server::handle_submit(const util::JsonValue& doc) {
  SubmitRequest req = decode_submit(doc);
  const std::size_t n = req.points.size();

  auto job = std::make_shared<Job>();
  {
    std::lock_guard<std::mutex> lock(jobs_mutex_);
    job->id = next_job_id_++;
  }
  job->client = req.client;
  job->request = std::move(req);
  job->identity.resize(n, 0);
  job->curves.resize(n);
  job->outcome.assign(n, std::string());
  job->error.assign(n, std::string());

  util::MetricsRegistry* reg = util::MetricsRegistry::global();
  AHS_LOGM_INFO("serve")
      << "job " << job->id << " from " << job->client << ": " << n
      << " point(s), " << job->request.times.size() << " time(s)";

  // Resolve every point against the cross-request store: first-claimant
  // enqueues a worker task, later requests share the pending computation
  // or the finished curve.  The loop re-claims after an abandon (a failed
  // computation is not cached).
  for (std::size_t i = 0; i < n; ++i) {
    const ahs::SweepPoint& point = job->request.points[i];
    const std::uint64_t key = ahs::point_identity_hash(
        point.params, job->request.times, job->request.study);
    job->identity[i] = key;
    const ResultIdentity rid =
        identity_of(point.params, job->request.times, job->request.study);

    for (;;) {
      if (stopping_.load(std::memory_order_relaxed)) {
        job->outcome[i] = "failed";
        job->error[i] = "server shutting down";
        break;
      }
      const ResultStore::Claim c = store_.claim(key, rid);
      if (c == ResultStore::Claim::kReady) {
        store_.find(key, &job->curves[i]);
        job->outcome[i] = "cached";
        break;
      }
      if (c == ResultStore::Claim::kCompute) {
        const std::uint64_t task_id =
            next_task_id_.fetch_add(1, std::memory_order_relaxed);
        {
          std::lock_guard<std::mutex> lock(jobs_mutex_);
          task_owner_[task_id] = {job, i};
        }
        {
          std::lock_guard<std::mutex> jlock(job->done_mutex);
          ++job->unresolved;
        }
        const std::uint64_t total =
            points_total_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (reg != nullptr)
          reg->gauge("ahs.sweep.points_total")
              .set(static_cast<double>(total));
        PendingPoint p;
        p.job_id = job->id;
        p.point_index = i;
        p.client = job->client;
        p.task_id = task_id;
        p.expected_seconds = expected_seconds(point.params);
        scheduler_.enqueue(std::move(p), now_seconds());
        break;
      }
      // kWait: share the in-flight computation.
      if (store_.wait_for(key, &job->curves[i])) {
        job->outcome[i] = "cached";
        break;
      }
      // Abandoned by its owner — try again (possibly becoming the owner).
    }
  }

  // Block until the dispatcher resolved every point this job owns.
  {
    std::unique_lock<std::mutex> lock(job->done_mutex);
    job->done_cv.wait(lock, [&job] { return job->unresolved == 0; });
  }

  std::ostringstream os;
  os << "{\"ok\":true,\"job\":" << job->id << ",\"results\":[";
  bool all_ok = true;
  for (std::size_t i = 0; i < n; ++i) {
    const bool ok = job->outcome[i] != "failed";
    all_ok = all_ok && ok;
    os << (i != 0 ? "," : "") << "{\"label\":\""
       << util::json_escape(job->request.points[i].label)
       << "\",\"outcome\":\"" << job->outcome[i] << "\",\"from_cache\":"
       << (job->outcome[i] == "cached" ? "true" : "false");
    if (!job->error[i].empty())
      os << ",\"error\":\"" << util::json_escape(job->error[i]) << "\"";
    if (ok) os << ",\"curve\":" << encode_curve_json(job->curves[i]);
    os << "}";
  }
  os << "]}";
  return os.str();
}

std::string Server::handle_stats() {
  const Scheduler::Stats s = scheduler_.stats();
  std::ostringstream os;
  os << "{\"ok\":true,\"op\":\"stats\",\"policy\":\"" << s.policy
     << "\",\"queue_depth\":" << scheduler_.depth()
     << ",\"enqueued\":" << s.enqueued << ",\"dispatched\":" << s.dispatched
     << ",\"mean_wait_seconds\":" << util::json_number(s.mean_wait_seconds())
     << ",\"max_wait_seconds\":" << util::json_number(s.max_wait_seconds)
     << ",\"dispatch_per_second\":"
     << util::json_number(s.dispatch_per_second())
     << ",\"store\":{\"entries\":" << store_.size()
     << ",\"hits\":" << store_.hits() << ",\"misses\":" << store_.misses()
     << "},\"workers\":{\"active\":" << supervisor_->active()
     << ",\"spawned\":" << supervisor_->spawned()
     << ",\"retries\":" << supervisor_->retries() << ",\"pids\":[";
  const std::vector<pid_t> pids = supervisor_->active_pids();
  for (std::size_t i = 0; i < pids.size(); ++i)
    os << (i != 0 ? "," : "") << pids[i];
  os << "]}}";
  return os.str();
}

void Server::dispatch_loop() {
  util::MetricsRegistry* reg = util::MetricsRegistry::global();
  util::Counter tm_points, tm_failed, tm_retried;
  util::HistogramHandle tm_seconds;
  if (reg != nullptr) {
    tm_points = reg->counter("ahs.sweep.points");
    tm_failed = reg->counter("ahs.serve.points_failed");
    tm_retried = reg->counter("ahs.serve.worker_retries");
    tm_seconds = reg->histogram(
        "ahs.sweep.point_seconds", {0, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120});
    reg->gauge("ahs.sweep.points_total").set(0.0);
  }
  std::uint64_t last_retries = 0;

  while (!stopping_.load(std::memory_order_relaxed)) {
    bool progress = false;

    while (supervisor_->active() <
           static_cast<std::size_t>(options_.max_workers)) {
      PendingPoint p;
      if (!scheduler_.pop(&p, now_seconds())) break;
      std::shared_ptr<Job> job;
      std::size_t index = 0;
      {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        const auto it = task_owner_.find(p.task_id);
        AHS_ASSERT(it != task_owner_.end(), "dispatched task has no owner");
        job = it->second.first;
        index = it->second.second;
      }
      WorkerTask task;
      task.task_id = p.task_id;
      task.point = job->request.points[index];
      task.times = job->request.times;
      task.study = job->request.study;
      task.debug_delay_seconds = options_.debug_worker_delay_seconds;
      supervisor_->dispatch(task);
      progress = true;
    }

    for (const WorkerSupervisor::Completion& c : supervisor_->poll()) {
      progress = true;
      std::shared_ptr<Job> job;
      std::size_t index = 0;
      {
        std::lock_guard<std::mutex> lock(jobs_mutex_);
        const auto it = task_owner_.find(c.task_id);
        if (it == task_owner_.end()) continue;  // shutdown raced us
        job = it->second.first;
        index = it->second.second;
        task_owner_.erase(it);
      }
      const std::uint64_t key = job->identity[index];
      const ahs::SweepPoint& point = job->request.points[index];
      if (c.ok) {
        record_seconds(point.params, c.seconds);
        store_.publish(key,
                       identity_of(point.params, job->request.times,
                                   job->request.study),
                       c.curve);
        if (reg != nullptr) {
          tm_points.inc();
          tm_seconds.record(c.seconds);
        }
      } else {
        store_.abandon(key);
        if (reg != nullptr) tm_failed.inc();
        AHS_LOGM_WARN("serve")
            << "job " << job->id << " point " << index << " ("
            << point.label << ") failed: " << c.error;
      }
      {
        std::lock_guard<std::mutex> jlock(job->done_mutex);
        job->curves[index] = c.curve;
        job->outcome[index] = c.ok ? "computed" : "failed";
        job->error[index] = c.error;
        --job->unresolved;
      }
      job->done_cv.notify_all();
    }

    if (reg != nullptr) {
      reg->gauge("ahs.serve.queue_depth")
          .set(static_cast<double>(scheduler_.depth()));
      reg->gauge("ahs.serve.workers_active")
          .set(static_cast<double>(supervisor_->active()));
      reg->gauge("ahs.serve.store_hits")
          .set(static_cast<double>(store_.hits()));
      reg->gauge("ahs.serve.store_misses")
          .set(static_cast<double>(store_.misses()));
      const Scheduler::Stats s = scheduler_.stats();
      reg->gauge("ahs.serve.mean_wait_seconds").set(s.mean_wait_seconds());
      reg->gauge("ahs.serve.dispatch_per_second")
          .set(s.dispatch_per_second());
      const std::uint64_t retries = supervisor_->retries();
      while (last_retries < retries) {
        tm_retried.inc();
        ++last_retries;
      }
    }

    if (!progress)
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace serve
