// Cross-request result store of the ahs_server daemon: completed curves
// keyed by ahs::point_identity_hash (index/label-free — two requests with
// equal identity hashes are guaranteed the same numerical result), so
// concurrent sweeps sharing points compute each shared point exactly once.
//
// Identity discipline is the same reject-don't-merge rule the snapshot
// layer enforces on disk: every entry carries the full identity tuple
// (params hash, times, study seed) alongside the 64-bit key, and an insert
// whose tuple differs from the stored one throws util::SnapshotError — a
// hash collision or a protocol bug must never silently serve one request's
// curve to another.
//
// Concurrency protocol for compute-once:
//   claim(id)  → kCompute   this caller must evaluate and later publish()
//              → kWait      someone else is computing; wait_for(id) blocks
//              → kReady     finished; take the curve from find()
// A failed computation calls abandon(id), which wakes the waiters and lets
// the next claimant retry (the failure is not cached).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "ahs/study.h"

namespace serve {

/// The full identity behind a 64-bit key — what reject-don't-merge
/// compares.  Cheap to build from the request fields.
struct ResultIdentity {
  std::uint64_t params_hash = 0;  ///< ahs::point_identity_hash input side
  std::uint64_t times_hash = 0;
  std::uint64_t seed = 0;
  bool operator==(const ResultIdentity&) const = default;
};

class ResultStore {
 public:
  enum class Claim { kCompute, kWait, kReady };

  /// Resolves who computes identity `key`.  First caller gets kCompute and
  /// owes a publish() or abandon(); later callers get kWait (in flight) or
  /// kReady (done).  Throws util::SnapshotError when `id` differs from the
  /// identity the key was first seen with.
  Claim claim(std::uint64_t key, const ResultIdentity& id);

  /// Publishes the finished curve for a key this caller claimed; wakes
  /// every wait_for().  Publishing a key that already holds a result is
  /// idempotent when the identity matches and throws when it does not.
  void publish(std::uint64_t key, const ResultIdentity& id,
               const ahs::UnsafetyCurve& curve);

  /// Gives up a kCompute claim after a failure: wakes waiters (their
  /// wait_for returns false) so one of them can re-claim and retry.
  void abandon(std::uint64_t key);

  /// Blocks until `key` is published or abandoned.  True → *curve filled.
  bool wait_for(std::uint64_t key, ahs::UnsafetyCurve* curve);

  /// Non-blocking lookup of a completed entry.  Counts toward the
  /// hit/miss telemetry.
  bool find(std::uint64_t key, ahs::UnsafetyCurve* curve);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t size() const;

 private:
  enum class State { kRunning, kDone };

  struct Entry {
    State state = State::kRunning;
    ResultIdentity identity;
    ahs::UnsafetyCurve curve;
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Entry> entries_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace serve
