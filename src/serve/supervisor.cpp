#include "serve/supervisor.h"

#include <utility>

#include "util/error.h"
#include "util/logging.h"
#include "util/snapshot.h"
#include "util/subprocess.h"

namespace serve {

WorkerSupervisor::WorkerSupervisor(Options options)
    : options_(std::move(options)),
      start_(std::chrono::steady_clock::now()) {
  AHS_REQUIRE(!options_.work_dir.empty(), "supervisor needs a work_dir");
  AHS_REQUIRE(!options_.worker_exe.empty(), "supervisor needs a worker_exe");
  AHS_REQUIRE(options_.max_attempts >= 1, "max_attempts must be >= 1");
}

WorkerSupervisor::~WorkerSupervisor() { kill_all(); }

double WorkerSupervisor::now_seconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start_)
      .count();
}

void WorkerSupervisor::spawn_locked(Active* a) {
  a->pid = util::spawn_process({options_.worker_exe, "--worker", "--task",
                                task_path(options_.work_dir,
                                          a->task.task_id)});
  ++spawned_;
}

void WorkerSupervisor::dispatch(const WorkerTask& task) {
  // The task file is written atomically so a worker never reads a torn
  // spec; rewriting an identical file on retry is harmless.
  util::atomic_write_file(task_path(options_.work_dir, task.task_id),
                          encode_task(task));
  std::lock_guard<std::mutex> lock(mutex_);
  Active a;
  a.task = task;
  a.started_seconds = now_seconds();
  spawn_locked(&a);
  active_.push_back(std::move(a));
}

std::vector<WorkerSupervisor::Completion> WorkerSupervisor::poll() {
  std::vector<Completion> done;
  std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < active_.size();) {
    Active& a = active_[i];
    int exit_code = 0;
    if (!util::try_wait_process(a.pid, &exit_code)) {
      ++i;
      continue;
    }

    // The exit code is advisory; the durable file is the truth.  This is
    // what makes a SIGKILLed-after-rename worker free to "restart": its
    // result is simply harvested here.
    const std::string result_path =
        task_result_path(options_.work_dir, a.task.task_id);
    const util::SnapshotHeader header = ahs::point_result_header(
        a.task.task_id, a.task.point, a.task.times, a.task.study);
    std::string payload;
    bool have_result = false;
    std::string error;
    try {
      have_result = util::read_snapshot(result_path, header, &payload);
    } catch (const util::SnapshotError& e) {
      // Identity mismatch or corruption: reject-don't-merge.  Surfaced as
      // a task failure, never as someone else's curve.
      Completion c;
      c.task_id = a.task.task_id;
      c.ok = false;
      c.error = e.what();
      c.attempts = a.attempt;
      c.seconds = now_seconds() - a.started_seconds;
      done.push_back(std::move(c));
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }

    if (have_result) {
      Completion c;
      c.task_id = a.task.task_id;
      c.ok = true;
      c.curve = ahs::decode_curve(payload);
      c.attempts = a.attempt;
      c.seconds = now_seconds() - a.started_seconds;
      done.push_back(std::move(c));
      active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
      continue;
    }

    if (exit_code == 0) {
      error = "worker exited 0 without writing its result file";
    } else if (exit_code < 0) {
      error = "worker killed by signal " + std::to_string(-exit_code);
    } else {
      error = "worker exited " + std::to_string(exit_code);
    }

    if (a.attempt < options_.max_attempts) {
      ++a.attempt;
      ++retries_;
      AHS_LOGM_WARN("serve")
          << "task " << a.task.task_id << " (" << a.task.point.label
          << "): " << error << " — retry " << a.attempt << "/"
          << options_.max_attempts;
      spawn_locked(&a);
      ++i;
      continue;
    }

    Completion c;
    c.task_id = a.task.task_id;
    c.ok = false;
    c.error = error + " after " + std::to_string(a.attempt) + " attempt(s)";
    c.attempts = a.attempt;
    c.seconds = now_seconds() - a.started_seconds;
    done.push_back(std::move(c));
    active_.erase(active_.begin() + static_cast<std::ptrdiff_t>(i));
  }
  return done;
}

std::size_t WorkerSupervisor::active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_.size();
}

std::vector<pid_t> WorkerSupervisor::active_pids() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<pid_t> pids;
  pids.reserve(active_.size());
  for (const Active& a : active_) pids.push_back(a.pid);
  return pids;
}

void WorkerSupervisor::kill_all() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Active& a : active_) {
    util::kill_process(a.pid, /*hard=*/true);
    util::wait_process(a.pid);
  }
  active_.clear();
}

std::uint64_t WorkerSupervisor::spawned() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spawned_;
}

std::uint64_t WorkerSupervisor::retries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return retries_;
}

}  // namespace serve
