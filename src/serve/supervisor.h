// Worker-process supervisor of the ahs_server daemon: spawns one process
// per dispatched point (re-execing the server binary in --worker mode),
// reaps exits non-blockingly, and harvests results from the durable
// point-result files.
//
// The file protocol carries ALL of the crash-safety (see serve/worker.h):
// poll() decides success purely by "does a valid, identity-matching result
// file exist", never by how the process exited.  A worker SIGKILLed after
// its atomic rename is a success; one killed before it is retried up to
// max_attempts; a result file whose header mismatches its task identity
// throws util::SnapshotError (reject-don't-merge, same as sweep resume).
#pragma once

#include <sys/types.h>

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace serve {

class WorkerSupervisor {
 public:
  struct Options {
    /// Directory for task + result files (created by the server).
    std::string work_dir;
    /// Executable to spawn; the supervisor appends
    /// `--worker --task <file>`.  Normally util::self_exe_path().
    std::string worker_exe;
    /// Spawn attempts per task before reporting failure (>= 1).
    int max_attempts = 3;
  };

  explicit WorkerSupervisor(Options options);
  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// Writes the task file and spawns a worker for it.  Non-blocking; the
  /// completion arrives via poll().
  void dispatch(const WorkerTask& task);

  struct Completion {
    std::uint64_t task_id = 0;
    bool ok = false;
    ahs::UnsafetyCurve curve;   ///< valid when ok
    std::string error;          ///< last failure when !ok
    int attempts = 0;           ///< spawns consumed (1 = clean first run)
    double seconds = 0.0;       ///< dispatch → completion wall clock
  };

  /// Reaps exited workers.  For each: a valid result file → success (even
  /// if the process died by signal); otherwise respawn while attempts
  /// remain, else a failed Completion.  Never blocks.
  std::vector<Completion> poll();

  /// Tasks currently running (spawned, not yet completed/failed).
  std::size_t active() const;

  /// Pids of the live worker processes — exposed through the stats op so
  /// the crash tests can aim kill(2) at a real worker.
  std::vector<pid_t> active_pids() const;

  /// SIGKILLs every live worker (shutdown path).  Their tasks are not
  /// retried; destructor calls this too.
  void kill_all();

  std::uint64_t spawned() const;
  std::uint64_t retries() const;

 private:
  struct Active {
    WorkerTask task;
    pid_t pid = -1;
    int attempt = 1;
    double started_seconds = 0.0;
  };

  /// Spawns (or respawns) the worker process for `active_[i]`.
  void spawn_locked(Active* a);
  double now_seconds() const;

  Options options_;
  mutable std::mutex mutex_;
  std::vector<Active> active_;
  std::uint64_t spawned_ = 0;
  std::uint64_t retries_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace serve
