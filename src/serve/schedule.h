// Priority job queue of the ahs_server daemon, behind a pluggable
// SchedulePolicy.  The unit of scheduling is one sweep *point* (one worker
// process evaluates one point), so a policy decision is "which pending
// point gets the next free worker slot".
//
// Three policies ship:
//   fifo  — strict arrival order; the baseline every queue needs.
//   sjf   — shortest-expected-point-first: expected seconds come from the
//           server's PointCostModel (an EWMA of completed point durations
//           keyed by structural fingerprint — the per-point seconds
//           telemetry run_sweep already records, reused service-side).
//           Classic mean-waiting-time optimizer; starves long points under
//           sustained load, which is why it is a policy and not the
//           default.
//   fair  — fair-share across clients: the pending point whose client has
//           the fewest dispatched points goes first (FIFO within a
//           client), so one client submitting a 500-point grid cannot
//           starve another's 3-point probe.
//
// The Scheduler wrapper owns the queue and the per-policy accounting the
// issue asks for: throughput (dispatches per second since the first
// enqueue) and waiting time (enqueue → dispatch), both exposed via stats()
// and the ahs.serve.* metrics.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace serve {

/// One schedulable unit: job `job_id` needs its point `point_index`
/// evaluated.  `expected_seconds` <= 0 means "no estimate yet" (policies
/// must order unknowns stably, not randomly).
struct PendingPoint {
  std::uint64_t job_id = 0;
  std::size_t point_index = 0;
  std::string client;
  std::uint64_t task_id = 0;       ///< supervisor task the dispatch will use
  double expected_seconds = 0.0;
  std::uint64_t enqueue_order = 0;  ///< global arrival counter
  double enqueue_seconds = 0.0;     ///< server clock at enqueue
};

/// Pure pick function: choose an element of `pending` (non-empty).
/// `dispatched_by_client` is the running dispatch count per client since
/// server start — the state fair-share needs.  Implementations must be
/// deterministic given (pending, dispatched_by_client).
class SchedulePolicy {
 public:
  virtual ~SchedulePolicy() = default;
  virtual const char* name() const = 0;
  virtual std::size_t pick(
      const std::vector<PendingPoint>& pending,
      const std::map<std::string, std::uint64_t>& dispatched_by_client) = 0;
};

/// Factory for "fifo" | "sjf" | "fair"; throws util::PreconditionError on
/// anything else.
std::unique_ptr<SchedulePolicy> make_policy(const std::string& name);

/// Thread-safe queue + accounting around a policy.
class Scheduler {
 public:
  explicit Scheduler(std::unique_ptr<SchedulePolicy> policy);

  /// Enqueues a point; stamps its arrival order.  `now_seconds` is the
  /// server's monotonic clock (injected for testability).
  void enqueue(PendingPoint point, double now_seconds);

  /// Applies the policy and removes the pick.  Returns false on an empty
  /// queue.  Records the point's waiting time against the accounting.
  bool pop(PendingPoint* out, double now_seconds);

  std::size_t depth() const;

  struct Stats {
    std::string policy;
    std::uint64_t enqueued = 0;
    std::uint64_t dispatched = 0;
    double total_wait_seconds = 0.0;   ///< Σ (dispatch − enqueue)
    double max_wait_seconds = 0.0;
    double first_enqueue_seconds = -1.0;
    double last_dispatch_seconds = 0.0;
    /// Mean enqueue→dispatch latency over every dispatched point.
    double mean_wait_seconds() const {
      return dispatched != 0
                 ? total_wait_seconds / static_cast<double>(dispatched)
                 : 0.0;
    }
    /// Dispatch throughput over the busy span (first enqueue → last
    /// dispatch); 0 before the first dispatch.
    double dispatch_per_second() const {
      const double span = last_dispatch_seconds - first_enqueue_seconds;
      return dispatched != 0 && span > 0.0
                 ? static_cast<double>(dispatched) / span
                 : 0.0;
    }
  };
  Stats stats() const;

 private:
  mutable std::mutex mutex_;
  std::unique_ptr<SchedulePolicy> policy_;
  std::vector<PendingPoint> pending_;
  std::map<std::string, std::uint64_t> dispatched_by_client_;
  std::uint64_t next_order_ = 0;
  Stats stats_;
};

}  // namespace serve
